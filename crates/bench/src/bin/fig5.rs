//! Figure 5 / Section 5.2 — prediction with optimizer cost models.
//!
//! Fits a linear regression from the optimizer's total-cost estimate to
//! query latency (the analytical-cost baseline) and reports the paper's
//! headline numbers: min / mean / max relative error and the predictive
//! risk footnote, plus the cost-vs-latency scatter.

use ml::metrics::{mean_relative_error, predictive_risk, relative_error};
use ml::{Dataset, LearnerKind, Learner, Model};
use qpp_bench::report::print_xy;
use qpp_bench::{build_dataset_sized, PER_TEMPLATE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(PER_TEMPLATE);

    let ds = build_dataset_sized(10.0, &tpch::EIGHTEEN, per_template);
    let costs: Vec<f64> = ds
        .queries
        .iter()
        .map(|q| q.plan.est.total_cost)
        .collect();
    let latencies = ds.latencies();

    // Least-squares fit of latency on optimizer cost.
    let x = Dataset::from_rows(costs.iter().map(|&c| vec![c]).collect());
    let model = LearnerKind::Linear { ridge: 1e-9 }
        .fit(&x, &latencies)
        .expect("cost regression");
    let preds: Vec<f64> = costs.iter().map(|&c| model.predict(&[c]).max(0.01)).collect();

    let rels: Vec<f64> = latencies
        .iter()
        .zip(&preds)
        .map(|(a, e)| relative_error(*a, *e))
        .collect();
    let min = rels.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rels.iter().cloned().fold(0.0, f64::max);
    let mean = mean_relative_error(&latencies, &preds);
    let risk = predictive_risk(&latencies, &preds);

    println!("== Section 5.2: predicting with the optimizer cost model (10GB) ==");
    println!("queries: {}", ds.len());
    println!("min relative error:  {:>8.0}%   (paper:   30%)", min * 100.0);
    println!("mean relative error: {:>8.0}%   (paper:  120%)", mean * 100.0);
    println!("max relative error:  {:>8.0}%   (paper: 1744%)", max * 100.0);
    println!("predictive risk:     {:>8.2}    (paper: ~0.93)", risk);

    let pairs: Vec<(f64, f64)> = costs.iter().cloned().zip(latencies.iter().cloned()).collect();
    print_xy(
        "Fig 5: optimizer cost vs execution time",
        "cost estimate",
        "latency (s)",
        &pairs,
        40,
    );
    // The paper's anecdote: queries with similar latencies but cost
    // estimates an order of magnitude apart.
    let mut by_latency: Vec<(f64, f64)> = pairs.clone();
    by_latency.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut best: Option<(f64, f64, f64)> = None;
    for w in by_latency.windows(8) {
        let (lo_c, hi_c) = w.iter().fold((f64::INFINITY, 0.0f64), |acc, (c, _)| {
            (acc.0.min(*c), acc.1.max(*c))
        });
        let spread = hi_c / lo_c.max(1e-9);
        let lat = w[0].1;
        if best.map(|(s, _, _)| spread > s).unwrap_or(true) {
            best = Some((spread, lat, w[7].1));
        }
    }
    if let Some((spread, lat_lo, lat_hi)) = best {
        println!(
            "\nqueries with latencies {:.0}-{:.0}s differ by {:.1}x in estimated cost —\n\
             cost orders plans, it does not predict latency",
            lat_lo, lat_hi, spread
        );
    }
}
