//! Load generator for the serving front-end, in three phases:
//!
//! A. **Identity** — every method served through the full queue/worker
//!    pipeline, checked bit-identical against calling the predictor
//!    directly (the coalesced batch path must be value-transparent).
//! B. **Closed loop** — N client threads issuing back-to-back requests;
//!    measures sustainable throughput and per-endpoint latency quantiles.
//! C. **Open loop overload** — bursty seeded arrivals at ~4x the injected
//!    service rate against a bounded queue and a deadline; measures the
//!    shed fraction, deadline misses, tier degradation, and the p99 of
//!    what was accepted.
//!
//! Prints a narrative to stderr and writes `BENCH_serve.json` in the
//! `BENCH-v1` schema (see `qpp_bench::schema`).
//!
//! Usage: `serve_load [OUT_PATH] [--per-template N] [--clients N]`

use engine::faults::{ArrivalPattern, ServeFaultPlan};
use engine::{Catalog, Simulator};
use qpp::{ExecutedQuery, Method, ModelRegistry, PlanOrdering, QppConfig, QppPredictor, QueryDataset};
use qpp_bench::schema::BenchDoc;
use serve::{Endpoint, PredictionServer, ServeConfig, TierCosts, ENDPOINTS};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpch::Workload;

const TEMPLATES: &[u8] = &[1, 3, 6, 14];
const METHODS: [Method; 3] = [
    Method::PlanLevel,
    Method::OperatorLevel,
    Method::Hybrid(PlanOrdering::ErrorBased),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let per_template = flag("--per-template", 8.0) as usize;
    let clients = flag("--clients", 8.0) as usize;

    eprintln!("== setup: collect + train + registry ==");
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(TEMPLATES, per_template, 0.1, 7);
    let ds = QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let t0 = Instant::now();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    eprintln!("   trained on {} queries in {:?}", refs.len(), t0.elapsed());
    let dir = std::env::temp_dir().join(format!("qpp-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(
        ModelRegistry::create(&dir, predictor, QppConfig::default()).expect("registry create"),
    );
    let queries: Vec<Arc<ExecutedQuery>> = ds.queries.iter().cloned().map(Arc::new).collect();

    // -- Phase A: bit-identity through the serving pipeline ------------
    eprintln!("== phase A: serve-vs-direct bit identity ==");
    let direct = registry.current();
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    let mut verified = 0u64;
    for method in METHODS {
        let pending: Vec<_> = queries
            .iter()
            .map(|q| server.submit(Arc::clone(q), method, None).expect("submit"))
            .collect();
        for (q, p) in queries.iter().zip(pending) {
            let got = p.wait().expect("identity predict");
            let want = direct.predict_checked(q, method);
            assert_eq!(
                got.value.to_bits(),
                want.value.to_bits(),
                "serving pipeline diverged from direct prediction"
            );
            verified += 1;
        }
    }
    let a_batches = server.stats();
    eprintln!(
        "   {verified} served results bit-identical (largest coalesced batch {})",
        a_batches.largest_batch
    );
    drop(server);

    // -- Phase B: closed-loop throughput -------------------------------
    eprintln!("== phase B: closed loop, {clients} clients ==");
    let server = Arc::new(PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig::default(),
    ));
    let per_client = 200usize;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = Arc::clone(&server);
            let queries = &queries;
            s.spawn(move || {
                for i in 0..per_client {
                    let q = &queries[(c * 7 + i) % queries.len()];
                    let method = METHODS[(c + i) % METHODS.len()];
                    server
                        .predict(Arc::clone(q), method, None)
                        .expect("closed-loop predict");
                }
            });
        }
    });
    let closed_wall = t0.elapsed().as_secs_f64();
    let closed = server.stats();
    let closed_rps = closed.served as f64 / closed_wall;
    eprintln!(
        "   {} served in {closed_wall:.3}s = {closed_rps:.0} rps (largest batch {})",
        closed.served, closed.largest_batch
    );
    drop(server);

    // -- Phase C: open-loop bursty overload ----------------------------
    eprintln!("== phase C: open loop, bursty arrivals at ~4x service rate ==");
    // ~2 ms injected stall per (max_batch=1) request caps one worker near
    // 500 rps; two workers near 1000 rps. Arrivals push 4000 rps.
    let service_stall = 0.002;
    let deadline = Duration::from_millis(40);
    let server = Arc::new(PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(2),
            queue_capacity: 16,
            max_batch: 1,
            default_deadline: Some(deadline),
            // Inflated cost estimates make degradation visible at this
            // deadline scale: a fresh 40 ms budget affords the hybrid,
            // a queue-aged one only the cheaper tiers.
            tier_costs: TierCosts([0.02, 0.008, 0.002, 1e-5, 0.0]),
            faults: ServeFaultPlan {
                stall_prob: 1.0,
                stall_secs: service_stall,
                slow_consumer_prob: 0.1,
                seed: 9,
            },
            ..ServeConfig::default()
        },
    ));
    let n = 800usize;
    let rate = 4000.0;
    let offsets = ArrivalPattern::Bursty {
        burst: 16,
        seed: 42,
    }
    .arrival_offsets(n, rate);
    let t0 = Instant::now();
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for (i, off) in offsets.iter().enumerate() {
        let target = Duration::from_secs_f64(*off);
        if let Some(wait) = target.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        match server.submit(
            Arc::clone(&queries[i % queries.len()]),
            Method::Hybrid(PlanOrdering::ErrorBased),
            None,
        ) {
            Ok(p) => pending.push(p),
            Err(_) => shed += 1,
        }
    }
    let mut served_ok = 0u64;
    let mut missed = 0u64;
    for p in pending {
        match p.wait() {
            Ok(_) => served_ok += 1,
            Err(_) => missed += 1,
        }
    }
    let over = server.stats();
    let shed_fraction = over.shed() as f64 / over.submitted as f64;
    let hybrid = over.endpoint(Endpoint::Hybrid);
    eprintln!(
        "   submitted {} | shed {} ({:.0}%) | served {served_ok} | missed {missed} | degraded {}",
        over.submitted,
        over.shed(),
        shed_fraction * 100.0,
        over.degraded
    );
    eprintln!(
        "   accepted p50 {:.2} ms, p99 {:.2} ms (deadline {:.0} ms), stalls {}",
        hybrid.p50_secs * 1e3,
        hybrid.p99_secs * 1e3,
        deadline.as_secs_f64() * 1e3,
        over.stalls_injected
    );
    assert_eq!(over.shed(), shed, "submitter and stats disagree on sheds");
    assert_eq!(
        over.served + over.deadline_missed + over.shed(),
        over.submitted,
        "every request accounted exactly once"
    );
    assert!(
        hybrid.p99_secs <= deadline.as_secs_f64(),
        "accepted p99 blew the deadline"
    );
    drop(server);

    let mut doc = BenchDoc::new(
        "serve_load",
        7,
        serde_json::json!({
            "templates": TEMPLATES,
            "per_template": per_template,
            "clients": clients,
            "overload_rate_rps": rate,
            "service_stall_secs": service_stall,
            "deadline_ms": deadline.as_secs_f64() * 1e3,
        }),
    );
    doc.push("identity/requests_verified", verified as f64, "requests");
    doc.push("closed/throughput", closed_rps, "rps");
    doc.push("closed/wall", closed_wall, "s");
    doc.push("closed/largest_batch", closed.largest_batch as f64, "requests");
    doc.push("over/submitted", over.submitted as f64, "requests");
    doc.push("over/shed_fraction", shed_fraction, "fraction");
    doc.push("over/served", over.served as f64, "requests");
    doc.push("over/deadline_missed", over.deadline_missed as f64, "requests");
    doc.push("over/degraded", over.degraded as f64, "requests");
    doc.push("over/stalls_injected", over.stalls_injected as f64, "stalls");
    doc.push("over/accepted_p50", hybrid.p50_secs * 1e3, "ms");
    doc.push("over/accepted_p99", hybrid.p99_secs * 1e3, "ms");
    for e in ENDPOINTS {
        let s = closed.endpoint(e);
        if s.count > 0 {
            doc.push(&format!("closed/{}_p50", e.name()), s.p50_secs * 1e3, "ms");
            doc.push(&format!("closed/{}_p99", e.name()), s.p99_secs * 1e3, "ms");
        }
    }
    doc.validate().expect("emitted document violates BENCH-v1");
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}
