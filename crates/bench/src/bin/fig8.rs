//! Figure 8 — hybrid plan-ordering strategies.
//!
//! For each of the three strategies, runs Algorithm 1 on the 14-template
//! 10 GB dataset and prints the training-error trajectory across
//! iterations. The paper's shape: error-based drops fastest, size-based
//! reaches the floor late, frequency-based stalls on large frequent
//! fragments.

use qpp::hybrid::{train_hybrid, HybridConfig, PlanOrdering};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::ExecutedQuery;
use qpp_bench::{build_dataset_sized, PER_TEMPLATE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(PER_TEMPLATE);

    let ds = build_dataset_sized(10.0, &tpch::FOURTEEN, per_template);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op_config = OpModelConfig::default();

    println!("== Fig 8: hybrid plan-ordering strategies (14 templates, 10GB) ==");
    println!("training-set mean relative error (%) after each iteration\n");

    let mut columns: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, strategy) in [
        ("error-based", PlanOrdering::ErrorBased),
        ("size-based", PlanOrdering::SizeBased),
        ("frequency-based", PlanOrdering::FrequencyBased),
    ] {
        let op = OpLevelModel::train(&refs, &op_config).expect("op-level");
        let config = HybridConfig {
            strategy,
            max_iterations: 30,
            target_error: 0.03,
            ..HybridConfig::default()
        };
        let (_, records) = train_hybrid(&refs, op, &config).expect("hybrid");
        let mut series = Vec::new();
        for r in &records {
            series.push(r.error * 100.0);
        }
        println!("{name}: {} iterations, {} accepted",
            records.len(),
            records.iter().filter(|r| r.accepted).count());
        for r in records.iter().filter(|r| r.accepted).take(6) {
            println!("   accepted: {}", r.description);
        }
        columns.push((name, series));
    }

    println!("\n{:<6} {:>14} {:>14} {:>16}", "iter", "error-based", "size-based", "frequency-based");
    let max_len = columns.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..max_len {
        let v = |k: usize| -> String {
            columns[k]
                .1
                .get(i)
                .map(|e| format!("{e:.1}"))
                .unwrap_or_else(|| "-".into())
        };
        println!("{:<6} {:>14} {:>14} {:>16}", i + 1, v(0), v(1), v(2));
    }
    println!(
        "\n(paper: error-based reaches the floor in a handful of iterations;\n\
         size-based needs more; frequency-based stalls early on big fragments)"
    );
}
