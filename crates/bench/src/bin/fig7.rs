//! Figure 7 — impact of estimation errors (Section 5.3.3).
//!
//! Trains and tests plan- and operator-level models over the four
//! combinations of actual and estimated feature values at 10 GB:
//!
//! - actual/actual — the (non-deployable) upper bound;
//! - estimate/estimate — the configuration used everywhere else;
//! - actual/estimate — training on clean values, testing on noisy ones:
//!   the worst of the three, because the model never learned to correct
//!   the optimizer's systematic errors.
//!
//! Panel (b) shows the plan-level per-template errors for actual/actual.

use ml::cv::stratified_kfold;
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp::{ExecutedQuery, FeatureSource, QueryDataset};
use qpp_bench::report::print_template_errors;
use qpp_bench::{build_dataset_sized, CvOutcome, CV_FOLDS, PER_TEMPLATE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args.get(1).map(String::as_str).unwrap_or("all").to_string();
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(PER_TEMPLATE);
    let want = |p: &str| panel == "all" || panel == p;

    if want("a") {
        println!("== Fig 7(a): train/test feature sources, mean relative error (%) ==\n");
        println!(
            "{:<20} {:>12} {:>12}",
            "train/test", "plan-level", "op-level"
        );
        let plan_ds = build_dataset_sized(10.0, &tpch::EIGHTEEN, per_template);
        let op_ds = build_dataset_sized(10.0, &tpch::FOURTEEN, per_template);
        for (label, train_src, test_src) in [
            ("actual/actual", FeatureSource::Actual, FeatureSource::Actual),
            (
                "estimate/estimate",
                FeatureSource::Estimated,
                FeatureSource::Estimated,
            ),
            (
                "actual/estimate",
                FeatureSource::Actual,
                FeatureSource::Estimated,
            ),
        ] {
            let plan_err = plan_cv(&plan_ds, train_src, test_src).overall_error() * 100.0;
            let op_err = op_cv(&op_ds, train_src, test_src).overall_error() * 100.0;
            println!("{label:<20} {plan_err:>12.2} {op_err:>12.2}");
        }
        println!(
            "\n(paper: actual/actual best, estimate/estimate a modest step behind,\n\
             actual/estimate much worse — models absorb systematic estimation\n\
             errors during training)"
        );
    }
    if want("b") {
        let ds = build_dataset_sized(10.0, &tpch::EIGHTEEN, per_template);
        let out = plan_cv(&ds, FeatureSource::Actual, FeatureSource::Actual);
        print_template_errors(
            "Fig 7(b): plan-level with actual values (10GB)",
            &out.per_template_errors(),
        );
        println!("overall mean relative error: {:.2}%", out.overall_error() * 100.0);
        println!("(paper: comparable to Fig 6(a), slightly better; one 54.4% spike)");
    }
}

/// Plan-level CV with distinct train/test feature sources.
fn plan_cv(ds: &QueryDataset, train_src: FeatureSource, test_src: FeatureSource) -> CvOutcome {
    let strata = ds.strata();
    let folds = stratified_kfold(&strata, CV_FOLDS, 42);
    let mut rows = vec![(0u8, 0.0, 0.0); ds.len()];
    for fold in &folds {
        let train: Vec<&ExecutedQuery> = ds.subset(&fold.train);
        let config = PlanModelConfig {
            source: train_src,
            ..PlanModelConfig::default()
        };
        let model = PlanLevelModel::train(&train, &config).expect("plan-level");
        for &i in &fold.test {
            let q = &ds.queries[i];
            let views = q.views(test_src);
            rows[i] = (
                q.template,
                q.latency(),
                model.predict_plan(&q.plan, &views),
            );
        }
    }
    CvOutcome { rows }
}

/// Operator-level CV with distinct train/test feature sources.
fn op_cv(ds: &QueryDataset, train_src: FeatureSource, test_src: FeatureSource) -> CvOutcome {
    let strata = ds.strata();
    let folds = stratified_kfold(&strata, CV_FOLDS, 17);
    let mut rows = vec![(0u8, 0.0, 0.0); ds.len()];
    for fold in &folds {
        let train: Vec<&ExecutedQuery> = ds.subset(&fold.train);
        let config = OpModelConfig {
            source: train_src,
            ..OpModelConfig::default()
        };
        let model = OpLevelModel::train(&train, &config).expect("op-level");
        for &i in &fold.test {
            let q = &ds.queries[i];
            let views = q.views(test_src);
            rows[i] = (
                q.template,
                q.latency(),
                model.predict_plan(&q.plan, &views).node_times[0].1,
            );
        }
    }
    CvOutcome { rows }
}
