//! Experiment harness: shared plumbing for the figure/table regeneration
//! binaries.
//!
//! Each binary in `src/bin/` regenerates one of the paper's figures or
//! tables (see DESIGN.md's experiment index); this library holds the
//! common protocol pieces — dataset construction matching Section 5.1,
//! stratified cross-validation drivers for every prediction method, and
//! per-template error reporting.

#![warn(missing_docs)]

pub mod report;
pub mod schema;

use engine::{Catalog, Simulator};
use ml::cv::{stratified_kfold, Fold};
use ml::metrics::mean_relative_error;
use qpp::dataset::{ExecutedQuery, QueryDataset, ONE_HOUR_SECS};
use qpp::hybrid::{train_hybrid, HybridConfig, HybridModel};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use tpch::Workload;

/// Number of query instances per template (Section 5.1: "approximately 55
/// queries from each template").
pub const PER_TEMPLATE: usize = 55;

/// Number of cross-validation folds (Section 5.1).
pub const CV_FOLDS: usize = 5;

/// Workload seed shared by all experiments so datasets are identical
/// across binaries.
pub const WORKLOAD_SEED: u64 = 20120401;

/// Execution-noise seed.
pub const EXEC_SEED: u64 = 777;

/// Builds the Section 5.1 dataset: `PER_TEMPLATE` instances per template,
/// executed cold with the one-hour limit applied.
pub fn build_dataset(sf: f64, templates: &[u8]) -> QueryDataset {
    build_dataset_sized(sf, templates, PER_TEMPLATE)
}

/// Dataset with an explicit per-template instance count (smoke tests).
pub fn build_dataset_sized(sf: f64, templates: &[u8], per_template: usize) -> QueryDataset {
    let catalog = Catalog::new(sf, 1);
    let workload = Workload::generate(templates, per_template, sf, WORKLOAD_SEED);
    let simulator = Simulator::new();
    QueryDataset::execute(&catalog, &workload, &simulator, EXEC_SEED, ONE_HOUR_SECS)
}

/// Out-of-fold predictions: (template, actual, predicted) per query.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// One row per query of the dataset, original order.
    pub rows: Vec<(u8, f64, f64)>,
}

impl CvOutcome {
    /// Mean relative error over all queries (per-fold averaging matches
    /// pooled averaging for equal-size folds; we report the pooled value).
    pub fn overall_error(&self) -> f64 {
        let actual: Vec<f64> = self.rows.iter().map(|r| r.1).collect();
        let est: Vec<f64> = self.rows.iter().map(|r| r.2).collect();
        mean_relative_error(&actual, &est)
    }

    /// Mean relative error per template, ascending template order.
    pub fn per_template_errors(&self) -> Vec<(u8, f64)> {
        let mut templates: Vec<u8> = self.rows.iter().map(|r| r.0).collect();
        templates.sort_unstable();
        templates.dedup();
        templates
            .into_iter()
            .map(|t| {
                let (a, e): (Vec<f64>, Vec<f64>) = self
                    .rows
                    .iter()
                    .filter(|r| r.0 == t)
                    .map(|r| (r.1, r.2))
                    .unzip();
                (t, mean_relative_error(&a, &e))
            })
            .collect()
    }

    /// Mean error over the subset of templates whose error is below the
    /// threshold, with the count (the paper's "11 of 14 templates below
    /// 20%" style of reporting).
    pub fn below_threshold(&self, threshold: f64) -> (usize, f64) {
        let per = self.per_template_errors();
        let good: Vec<f64> = per
            .iter()
            .filter(|(_, e)| *e < threshold)
            .map(|(_, e)| *e)
            .collect();
        if good.is_empty() {
            (0, f64::NAN)
        } else {
            (good.len(), good.iter().sum::<f64>() / good.len() as f64)
        }
    }
}

/// Generic stratified-CV driver: `fit` builds a model from training
/// queries, `predict` scores one query.
///
/// Folds train and score concurrently when more than one worker thread is
/// configured (see `ml::par`); each fold writes a disjoint set of row
/// indices, and results are merged in fold order, so the outcome is
/// identical to a serial run.
pub fn cross_validate_method<M: Send>(
    ds: &QueryDataset,
    seed: u64,
    fit: impl Fn(&[&ExecutedQuery]) -> M + Sync,
    predict: impl Fn(&M, &ExecutedQuery) -> f64 + Sync,
) -> CvOutcome {
    let strata = ds.strata();
    let folds = stratified_kfold(&strata, CV_FOLDS.min(ds.len()).max(2), seed);
    // (query index, (template, actual latency, predicted latency)).
    type FoldRow = (usize, (u8, f64, f64));
    let run_fold = |fold: &Fold| -> Vec<FoldRow> {
        let train = ds.subset(&fold.train);
        let model = fit(&train);
        fold.test
            .iter()
            .map(|&i| {
                let q = &ds.queries[i];
                (i, (q.template, q.latency(), predict(&model, q)))
            })
            .collect()
    };
    let fold_rows: Vec<Vec<FoldRow>> =
        if folds.len() > 1 && ml::par::threads() > 1 {
            ml::par::par_map(&folds, |_, fold| run_fold(fold))
        } else {
            folds.iter().map(run_fold).collect()
        };
    let mut rows = vec![(0u8, 0.0, 0.0); ds.len()];
    for per_fold in fold_rows {
        for (i, row) in per_fold {
            rows[i] = row;
        }
    }
    CvOutcome { rows }
}

/// Plan-level CV (Figure 6(a)-(c)).
pub fn plan_level_cv(ds: &QueryDataset, config: &PlanModelConfig) -> CvOutcome {
    cross_validate_method(
        ds,
        config.seed,
        |train| PlanLevelModel::train(train, config).expect("plan-level training"),
        |m, q| m.predict(q),
    )
}

/// Operator-level CV (Figure 6(d)-(f)).
pub fn op_level_cv(ds: &QueryDataset, config: &OpModelConfig) -> CvOutcome {
    cross_validate_method(
        ds,
        config.seed,
        |train| OpLevelModel::train(train, config).expect("op-level training"),
        |m, q| m.predict(q),
    )
}

/// Hybrid CV (used by the ablations; Figure 8 uses the in-training
/// trajectory instead).
pub fn hybrid_cv(ds: &QueryDataset, op: &OpModelConfig, hybrid: &HybridConfig) -> CvOutcome {
    cross_validate_method(
        ds,
        hybrid.seed,
        |train| {
            let op_model = OpLevelModel::train(train, op).expect("op-level training");
            let (m, _) = train_hybrid(train, op_model, hybrid).expect("hybrid training");
            m
        },
        |m: &HybridModel, q| m.predict(q),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_builder_matches_protocol() {
        let ds = build_dataset_sized(0.05, &[1, 6], 4);
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.templates(), vec![1, 6]);
    }

    #[test]
    fn cv_outcome_aggregations() {
        let out = CvOutcome {
            rows: vec![
                (1, 10.0, 11.0),
                (1, 10.0, 9.0),
                (2, 100.0, 200.0),
                (2, 100.0, 100.0),
            ],
        };
        let per = out.per_template_errors();
        assert_eq!(per.len(), 2);
        assert!((per[0].1 - 0.1).abs() < 1e-12);
        assert!((per[1].1 - 0.5).abs() < 1e-12);
        assert!((out.overall_error() - 0.3).abs() < 1e-12);
        let (n, avg) = out.below_threshold(0.2);
        assert_eq!(n, 1);
        assert!((avg - 0.1).abs() < 1e-12);
    }

    #[test]
    fn plan_level_cv_runs_end_to_end_small() {
        let ds = build_dataset_sized(0.05, &[1, 3, 6], 8);
        let out = plan_level_cv(&ds, &PlanModelConfig::default());
        assert_eq!(out.rows.len(), ds.len());
        assert!(out.overall_error().is_finite());
    }
}

#[cfg(test)]
mod hybrid_cv_tests {
    use super::*;
    use qpp::hybrid::HybridConfig;

    #[test]
    fn hybrid_cv_runs_end_to_end_small() {
        let ds = build_dataset_sized(0.05, &[1, 3, 6], 8);
        let out = hybrid_cv(
            &ds,
            &OpModelConfig::default(),
            &HybridConfig {
                max_iterations: 3,
                min_frequency: 3,
                ..HybridConfig::default()
            },
        );
        assert_eq!(out.rows.len(), ds.len());
        assert!(out.overall_error().is_finite());
    }
}
