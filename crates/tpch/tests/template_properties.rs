//! Property checks over the 22 template definitions: parameter ranges,
//! structural stability, and selectivity sanity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tpch::spec::{GroupCount, Predicate, RelExpr};
use tpch::{instantiate, ALL_TEMPLATES};

/// Every template's scans only reference columns of their own table, and
/// every join connects columns of the two sides' base tables.
#[test]
fn predicates_and_joins_are_well_typed() {
    for t in ALL_TEMPLATES {
        let mut rng = StdRng::seed_from_u64(t as u64 * 31);
        for _ in 0..5 {
            let q = instantiate(t, 1.0, &mut rng);
            q.root.visit(&mut |e| {
                if let RelExpr::Scan { table, filters, .. } = e {
                    for f in filters {
                        assert_eq!(
                            f.column().table,
                            *table,
                            "t{t}: filter column from another table"
                        );
                        if let Predicate::ColCmp { left, right, .. } = f {
                            assert_eq!(left.table, right.table, "t{t}: cross-table ColCmp");
                        }
                    }
                }
            });
        }
    }
}

/// Truth overrides and corrections are valid probabilities/multipliers.
#[test]
fn truth_knobs_are_sane() {
    for t in ALL_TEMPLATES {
        let mut rng = StdRng::seed_from_u64(t as u64 * 17);
        let q = instantiate(t, 1.0, &mut rng);
        q.root.visit(&mut |e| match e {
            RelExpr::Scan {
                truth_sel_override: Some(s),
                ..
            } => {
                assert!((0.0..=1.0).contains(s), "t{t}: override {s}");
            }
            RelExpr::Join {
                kind,
                truth_correction,
                extra_filter_sel,
                ..
            } => {
                assert!(*truth_correction >= 0.0, "t{t}");
                assert!(
                    (0.0..=1.0).contains(extra_filter_sel),
                    "t{t}: extra {extra_filter_sel}"
                );
                if matches!(kind, tpch::JoinKind::Semi | tpch::JoinKind::Anti) {
                    assert!(
                        *truth_correction <= 1.0,
                        "t{t}: semi/anti retains at most all rows"
                    );
                }
            }
            RelExpr::ScalarSubqueryFilter { truth_sel, .. } => {
                assert!((0.0..=1.0).contains(truth_sel), "t{t}: {truth_sel}");
            }
            RelExpr::Aggregate { spec, .. } => {
                if let Some(h) = &spec.having {
                    assert!((0.0..=1.0).contains(&h.truth_fraction), "t{t}");
                }
                if let GroupCount::Fixed(f) = spec.groups {
                    assert!(f >= 1.0, "t{t}: fixed groups {f}");
                }
            }
            _ => {}
        });
    }
}

/// Plan structure (table multiset) is stable across parameterizations of
/// the same template; only parameters vary.
#[test]
fn structure_is_parameter_independent() {
    for t in ALL_TEMPLATES {
        let mut rng = StdRng::seed_from_u64(t as u64);
        let tables = |q: &tpch::QuerySpec| {
            let mut v = q.root.tables();
            v.sort();
            v
        };
        let first = tables(&instantiate(t, 1.0, &mut rng));
        for _ in 0..6 {
            assert_eq!(tables(&instantiate(t, 1.0, &mut rng)), first, "t{t}");
        }
    }
}

/// The lineitem-heavy templates actually touch LINEITEM; the tiny lookups
/// don't.
#[test]
fn table_footprints_match_the_spec() {
    use tpch::TableId::*;
    let mut rng = StdRng::seed_from_u64(5);
    for (t, must_touch) in [(1u8, Lineitem), (9, Partsupp), (13, Orders), (22, Customer)] {
        let q = instantiate(t, 1.0, &mut rng);
        assert!(q.root.tables().contains(&must_touch), "t{t}");
    }
    // Template 11 never touches lineitem.
    let q11 = instantiate(11, 1.0, &mut rng);
    assert!(!q11.root.tables().contains(&Lineitem));
}

/// Parameters drawn per the spec stay within the spec's windows.
#[test]
fn parameters_stay_in_spec_windows() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..30 {
        let q1 = instantiate(1, 1.0, &mut rng);
        let delta: i32 = q1.params[0].1.parse().unwrap();
        assert!((60..=120).contains(&delta));

        let q6 = instantiate(6, 1.0, &mut rng);
        let qty: i32 = q6
            .params
            .iter()
            .find(|(k, _)| k == "quantity")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!((24..=25).contains(&qty));

        let q18 = instantiate(18, 1.0, &mut rng);
        let q: f64 = q18.params[0].1.parse().unwrap();
        assert!((312.0..=315.0).contains(&q));
    }
}

/// Workload instances of the same template differ in parameters (no
/// degenerate constant workloads) for the parameterized templates.
#[test]
fn instances_vary() {
    for t in [1u8, 3, 4, 5, 6, 8, 10, 12, 14, 19] {
        let w = tpch::Workload::generate(&[t], 12, 1.0, 3);
        let distinct: std::collections::HashSet<String> = w
            .queries
            .iter()
            .map(|q| format!("{:?}", q.params))
            .collect();
        assert!(distinct.len() > 1, "t{t}: constant parameters");
    }
}
