//! TPC-H substrate: schema, statistics, data generation, query templates.
//!
//! This crate is the workload side of the QPP reproduction. It provides:
//!
//! - [`schema`] — the eight TPC-H tables, row counts and page counts per
//!   scale factor.
//! - [`dicts`] — the specification's categorical vocabularies (segments,
//!   ship modes, nations, brands, ...).
//! - [`distributions`] — the generative distribution of every column and
//!   *exact* selectivity math, including the joint probabilities of the
//!   correlated date predicates that defeat independence-assuming
//!   optimizers.
//! - [`datagen`] — a dbgen-like columnar row generator used to validate
//!   the analytic model at small scale factors.
//! - [`spec`] — the logical query IR (scans, joins, aggregates, scalar
//!   subqueries) consumed by the engine's planner.
//! - [`templates`] — the 22 TPC-H query templates with spec-conform
//!   parameter sampling, plus the template subsets used by the paper's
//!   experiments.
//! - [`workload`] — seeded workload batches (≈55 instances per template).

#![warn(missing_docs)]

pub mod datagen;
pub mod dicts;
pub mod distributions;
pub mod schema;
pub mod spec;
pub mod templates;
pub mod types;
pub mod workload;

pub use datagen::{ColumnData, GeneratedDb, TableData};
pub use schema::{col, ColRef, TableId, ALL_TABLES};
pub use spec::{
    AggFunc, AggregateSpec, GroupCount, Having, JoinKind, Predicate, QuerySpec, RelExpr,
};
pub use templates::{instantiate, ALL_TEMPLATES, EIGHTEEN, FOURTEEN, TWELVE};
pub use types::{date, format_date, CmpOp, Scalar};
pub use workload::Workload;
