//! A dbgen-like row generator.
//!
//! Generates the eight TPC-H tables at a given scale factor into columnar
//! in-memory storage, following the same generative distributions described
//! in [`crate::distributions`]. It is used at tiny scale factors (SF ≤ 0.05)
//! to validate the analytic cardinality model against actual row counts and
//! to feed the mini executor; the performance experiments themselves run on
//! analytic statistics, not materialized rows.
//!
//! Categorical columns are stored as dictionary codes, dates as day numbers
//! and discounts/taxes as integer percent codes — exactly the numeric view
//! the predicate math in [`crate::distributions`] uses.

use crate::dicts;
use crate::schema::{TableId, ALL_TABLES};
use crate::types::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One column of generated values.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers (keys, quantities, sizes, discount codes).
    Int(Vec<i64>),
    /// Floats (prices, balances).
    Float(Vec<f64>),
    /// Dates as day numbers.
    Date(Vec<i32>),
    /// Categorical dictionary codes.
    Cat(Vec<u32>),
}

impl ColumnData {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Cat(v) => v.len(),
        }
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `i` as a typed scalar.
    pub fn get(&self, i: usize) -> Scalar {
        match self {
            ColumnData::Int(v) => Scalar::Int(v[i]),
            ColumnData::Float(v) => Scalar::Float(v[i]),
            ColumnData::Date(v) => Scalar::Date(v[i]),
            ColumnData::Cat(v) => Scalar::Cat(v[i]),
        }
    }

    /// Value at `i` on the numeric comparison scale.
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            ColumnData::Int(v) => v[i] as f64,
            ColumnData::Float(v) => v[i],
            ColumnData::Date(v) => v[i] as f64,
            ColumnData::Cat(v) => v[i] as f64,
        }
    }
}

/// A generated table: named columns of equal length.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    columns: Vec<(&'static str, ColumnData)>,
    n_rows: usize,
}

impl TableData {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Borrow a column by name.
    ///
    /// # Panics
    /// Panics if the column does not exist.
    pub fn column(&self, name: &str) -> &ColumnData {
        self.columns
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c)
            .unwrap_or_else(|| panic!("no generated column {name}"))
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&'static str> {
        self.columns.iter().map(|(n, _)| *n).collect()
    }

    fn push(&mut self, name: &'static str, data: ColumnData) {
        if self.columns.is_empty() {
            self.n_rows = data.len();
        } else {
            assert_eq!(self.n_rows, data.len(), "ragged column {name}");
        }
        self.columns.push((name, data));
    }
}

/// A complete generated database.
#[derive(Debug, Clone)]
pub struct GeneratedDb {
    /// Scale factor the data was generated at.
    pub sf: f64,
    tables: HashMap<TableId, TableData>,
}

impl GeneratedDb {
    /// Generates all eight tables at the given scale factor with a
    /// deterministic seed.
    ///
    /// # Panics
    /// Panics for `sf <= 0`.
    pub fn generate(sf: f64, seed: u64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = HashMap::new();
        tables.insert(TableId::Region, gen_region());
        tables.insert(TableId::Nation, gen_nation());
        tables.insert(TableId::Supplier, gen_supplier(sf, &mut rng));
        tables.insert(TableId::Customer, gen_customer(sf, &mut rng));
        tables.insert(TableId::Part, gen_part(sf, &mut rng));
        tables.insert(TableId::Partsupp, gen_partsupp(sf, &mut rng));
        let (orders, lineitem) = gen_orders_lineitem(sf, &mut rng);
        tables.insert(TableId::Orders, orders);
        tables.insert(TableId::Lineitem, lineitem);
        GeneratedDb { sf, tables }
    }

    /// Borrow a table.
    pub fn table(&self, id: TableId) -> &TableData {
        &self.tables[&id]
    }

    /// Total generated rows across all tables.
    pub fn total_rows(&self) -> usize {
        ALL_TABLES.iter().map(|t| self.table(*t).n_rows()).sum()
    }
}

fn gen_region() -> TableData {
    let mut t = TableData::default();
    t.push("r_regionkey", ColumnData::Int((1..=5).collect()));
    t.push("r_name", ColumnData::Cat((0..5).collect()));
    t
}

fn gen_nation() -> TableData {
    let mut t = TableData::default();
    t.push("n_nationkey", ColumnData::Int((1..=25).collect()));
    t.push("n_name", ColumnData::Cat((0..25).collect()));
    t.push(
        "n_regionkey",
        ColumnData::Int(dicts::NATION_REGION.iter().map(|&r| r as i64 + 1).collect()),
    );
    t
}

fn acctbal(rng: &mut StdRng) -> f64 {
    rng.gen_range(-999.99..9999.99)
}

fn gen_supplier(sf: f64, rng: &mut StdRng) -> TableData {
    let n = TableId::Supplier.row_count(sf) as i64;
    let mut t = TableData::default();
    t.push("s_suppkey", ColumnData::Int((1..=n).collect()));
    t.push(
        "s_nationkey",
        ColumnData::Int((0..n).map(|_| rng.gen_range(1..=25)).collect()),
    );
    t.push(
        "s_acctbal",
        ColumnData::Float((0..n).map(|_| acctbal(rng)).collect()),
    );
    t
}

fn gen_customer(sf: f64, rng: &mut StdRng) -> TableData {
    let n = TableId::Customer.row_count(sf) as i64;
    let mut t = TableData::default();
    t.push("c_custkey", ColumnData::Int((1..=n).collect()));
    t.push(
        "c_nationkey",
        ColumnData::Int((0..n).map(|_| rng.gen_range(1..=25)).collect()),
    );
    t.push(
        "c_acctbal",
        ColumnData::Float((0..n).map(|_| acctbal(rng)).collect()),
    );
    t.push(
        "c_mktsegment",
        ColumnData::Cat((0..n).map(|_| rng.gen_range(0..5)).collect()),
    );
    t
}

/// Samples a color code from the skewed popularity distribution used by
/// part names (matches `distributions::color_weight`).
fn sample_color(rng: &mut StdRng) -> u32 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for c in 0..dicts::N_COLORS {
        acc += crate::distributions::color_weight(c);
        if u < acc {
            return c;
        }
    }
    dicts::N_COLORS - 1
}

fn gen_part(sf: f64, rng: &mut StdRng) -> TableData {
    let n = TableId::Part.row_count(sf) as i64;
    let mut t = TableData::default();
    t.push("p_partkey", ColumnData::Int((1..=n).collect()));
    // p_name is 5 colors; store the set compactly as one representative
    // color per word position in auxiliary columns used by LIKE evaluation.
    for w in 0..dicts::NAME_WORDS {
        // These per-word columns are internal to the generator; LIKE
        // evaluation checks membership across them.
        let name: &'static str = match w {
            0 => "p_name",
            1 => "p_name_w1",
            2 => "p_name_w2",
            3 => "p_name_w3",
            _ => "p_name_w4",
        };
        let data = ColumnData::Cat((0..n).map(|_| sample_color(rng)).collect());
        if w == 0 {
            t.push("p_name", data);
        } else {
            t.push(name, data);
        }
    }
    t.push(
        "p_mfgr",
        ColumnData::Cat((0..n).map(|_| rng.gen_range(0..5)).collect()),
    );
    t.push(
        "p_brand",
        ColumnData::Cat((0..n).map(|_| rng.gen_range(0..dicts::N_BRANDS)).collect()),
    );
    t.push(
        "p_type",
        ColumnData::Cat((0..n).map(|_| rng.gen_range(0..dicts::N_TYPES)).collect()),
    );
    t.push(
        "p_size",
        ColumnData::Int((0..n).map(|_| rng.gen_range(1..=50)).collect()),
    );
    t.push(
        "p_container",
        ColumnData::Cat(
            (0..n)
                .map(|_| rng.gen_range(0..dicts::N_CONTAINERS))
                .collect(),
        ),
    );
    t.push(
        "p_retailprice",
        ColumnData::Float((0..n).map(|_| rng.gen_range(900.0..2100.0)).collect()),
    );
    t
}

fn gen_partsupp(sf: f64, rng: &mut StdRng) -> TableData {
    let n_part = TableId::Part.row_count(sf) as i64;
    let n_supp = TableId::Supplier.row_count(sf) as i64;
    let mut partkey = Vec::new();
    let mut suppkey = Vec::new();
    for p in 1..=n_part {
        for _ in 0..4 {
            partkey.push(p);
            suppkey.push(rng.gen_range(1..=n_supp));
        }
    }
    let n = partkey.len();
    let mut t = TableData::default();
    t.push("ps_partkey", ColumnData::Int(partkey));
    t.push("ps_suppkey", ColumnData::Int(suppkey));
    t.push(
        "ps_availqty",
        ColumnData::Int((0..n).map(|_| rng.gen_range(1..=9999)).collect()),
    );
    t.push(
        "ps_supplycost",
        ColumnData::Float((0..n).map(|_| rng.gen_range(1.0..1000.0)).collect()),
    );
    t
}

fn gen_orders_lineitem(sf: f64, rng: &mut StdRng) -> (TableData, TableData) {
    use crate::distributions::{COMMIT_LAG, LINES_PER_ORDER, ORDERDATE_VALUES, RECEIPT_LAG, SHIP_LAG_MAX};
    let n_orders = TableId::Orders.row_count(sf) as i64;
    let n_cust = TableId::Customer.row_count(sf) as i64;
    let n_part = TableId::Part.row_count(sf) as i64;
    let n_supp = TableId::Supplier.row_count(sf) as i64;

    let mut o_key = Vec::with_capacity(n_orders as usize);
    let mut o_cust = Vec::with_capacity(n_orders as usize);
    let mut o_status = Vec::with_capacity(n_orders as usize);
    let mut o_total = Vec::with_capacity(n_orders as usize);
    let mut o_date = Vec::with_capacity(n_orders as usize);
    let mut o_prio = Vec::with_capacity(n_orders as usize);
    let mut o_shipprio = Vec::with_capacity(n_orders as usize);

    let mut l_order = Vec::new();
    let mut l_part = Vec::new();
    let mut l_supp = Vec::new();
    let mut l_lineno = Vec::new();
    let mut l_qty = Vec::new();
    let mut l_extprice = Vec::new();
    let mut l_disc = Vec::new();
    let mut l_tax = Vec::new();
    let mut l_retflag = Vec::new();
    let mut l_status = Vec::new();
    let mut l_ship = Vec::new();
    let mut l_commit = Vec::new();
    let mut l_receipt = Vec::new();
    let mut l_instruct = Vec::new();
    let mut l_mode = Vec::new();

    for okey in 1..=n_orders {
        let odate = rng.gen_range(0..ORDERDATE_VALUES);
        o_key.push(okey);
        o_cust.push(rng.gen_range(1..=n_cust));
        o_status.push(rng.gen_range(0..3u32));
        o_date.push(odate);
        o_prio.push(rng.gen_range(0..5u32));
        o_shipprio.push(0i64);

        let k = rng.gen_range(LINES_PER_ORDER.0..=LINES_PER_ORDER.1);
        let mut total = 0.0;
        for line in 1..=k {
            let qty = rng.gen_range(1..=50i64);
            let unit_price: f64 = rng.gen_range(900.0..2100.0);
            let ext = qty as f64 * unit_price;
            let ship = odate + rng.gen_range(1..=SHIP_LAG_MAX);
            let commit = odate + rng.gen_range(COMMIT_LAG.0..=COMMIT_LAG.1);
            let receipt = ship + rng.gen_range(RECEIPT_LAG.0..=RECEIPT_LAG.1);
            l_order.push(okey);
            l_part.push(rng.gen_range(1..=n_part));
            l_supp.push(rng.gen_range(1..=n_supp));
            l_lineno.push(line as i64);
            l_qty.push(qty);
            l_extprice.push(ext);
            l_disc.push(rng.gen_range(0..=10i64));
            l_tax.push(rng.gen_range(0..=8i64));
            l_retflag.push(rng.gen_range(0..3u32));
            l_status.push(rng.gen_range(0..2u32));
            l_ship.push(ship);
            l_commit.push(commit);
            l_receipt.push(receipt);
            l_instruct.push(rng.gen_range(0..4u32));
            l_mode.push(rng.gen_range(0..7u32));
            total += ext;
        }
        o_total.push(total);
    }

    let mut orders = TableData::default();
    orders.push("o_orderkey", ColumnData::Int(o_key));
    orders.push("o_custkey", ColumnData::Int(o_cust));
    orders.push("o_orderstatus", ColumnData::Cat(o_status));
    orders.push("o_totalprice", ColumnData::Float(o_total));
    orders.push("o_orderdate", ColumnData::Date(o_date));
    orders.push("o_orderpriority", ColumnData::Cat(o_prio));
    orders.push("o_shippriority", ColumnData::Int(o_shipprio));

    let mut li = TableData::default();
    li.push("l_orderkey", ColumnData::Int(l_order));
    li.push("l_partkey", ColumnData::Int(l_part));
    li.push("l_suppkey", ColumnData::Int(l_supp));
    li.push("l_linenumber", ColumnData::Int(l_lineno));
    li.push("l_quantity", ColumnData::Int(l_qty));
    li.push("l_extendedprice", ColumnData::Float(l_extprice));
    li.push("l_discount", ColumnData::Int(l_disc));
    li.push("l_tax", ColumnData::Int(l_tax));
    li.push("l_returnflag", ColumnData::Cat(l_retflag));
    li.push("l_linestatus", ColumnData::Cat(l_status));
    li.push("l_shipdate", ColumnData::Date(l_ship));
    li.push("l_commitdate", ColumnData::Date(l_commit));
    li.push("l_receiptdate", ColumnData::Date(l_receipt));
    li.push("l_shipinstruct", ColumnData::Cat(l_instruct));
    li.push("l_shipmode", ColumnData::Cat(l_mode));
    (orders, li)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::p_commit_before_receipt;

    fn small_db() -> GeneratedDb {
        GeneratedDb::generate(0.01, 42)
    }

    #[test]
    fn generates_expected_row_counts() {
        let db = small_db();
        assert_eq!(db.table(TableId::Region).n_rows(), 5);
        assert_eq!(db.table(TableId::Nation).n_rows(), 25);
        assert_eq!(db.table(TableId::Supplier).n_rows(), 100);
        assert_eq!(db.table(TableId::Customer).n_rows(), 1_500);
        assert_eq!(db.table(TableId::Part).n_rows(), 2_000);
        assert_eq!(db.table(TableId::Partsupp).n_rows(), 8_000);
        assert_eq!(db.table(TableId::Orders).n_rows(), 15_000);
        // Lineitem is 1..7 lines per order: expect ≈ 4× orders.
        let li = db.table(TableId::Lineitem).n_rows();
        assert!((45_000..75_000).contains(&li), "lineitem rows = {li}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GeneratedDb::generate(0.002, 7);
        let b = GeneratedDb::generate(0.002, 7);
        let ca = a.table(TableId::Lineitem).column("l_quantity");
        let cb = b.table(TableId::Lineitem).column("l_quantity");
        for i in 0..ca.len().min(100) {
            assert_eq!(ca.get_f64(i), cb.get_f64(i));
        }
    }

    #[test]
    fn shipdate_respects_order_date_lag() {
        let db = small_db();
        let orders = db.table(TableId::Orders);
        let li = db.table(TableId::Lineitem);
        // Build order date lookup by key.
        let okeys = orders.column("o_orderkey");
        let odates = orders.column("o_orderdate");
        let mut by_key = std::collections::HashMap::new();
        for i in 0..orders.n_rows() {
            by_key.insert(okeys.get_f64(i) as i64, odates.get_f64(i) as i32);
        }
        let lkeys = li.column("l_orderkey");
        let lship = li.column("l_shipdate");
        let lcommit = li.column("l_commitdate");
        let lreceipt = li.column("l_receiptdate");
        for i in 0..li.n_rows() {
            let od = by_key[&(lkeys.get_f64(i) as i64)];
            let ship = lship.get_f64(i) as i32;
            let commit = lcommit.get_f64(i) as i32;
            let receipt = lreceipt.get_f64(i) as i32;
            assert!((1..=121).contains(&(ship - od)), "ship lag");
            assert!((30..=90).contains(&(commit - od)), "commit lag");
            assert!((1..=30).contains(&(receipt - ship)), "receipt lag");
        }
    }

    #[test]
    fn late_line_fraction_matches_analytic_probability() {
        let db = small_db();
        let li = db.table(TableId::Lineitem);
        let commit = li.column("l_commitdate");
        let receipt = li.column("l_receiptdate");
        let late = (0..li.n_rows())
            .filter(|&i| commit.get_f64(i) < receipt.get_f64(i))
            .count();
        let observed = late as f64 / li.n_rows() as f64;
        let analytic = p_commit_before_receipt();
        assert!(
            (observed - analytic).abs() < 0.02,
            "observed {observed}, analytic {analytic}"
        );
    }

    #[test]
    fn quantity_is_uniform_1_to_50() {
        let db = small_db();
        let q = db.table(TableId::Lineitem).column("l_quantity");
        let n = q.len();
        let low = (0..n).filter(|&i| q.get_f64(i) <= 25.0).count();
        let frac = low as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "P(q <= 25) = {frac}");
        for i in 0..n {
            let v = q.get_f64(i);
            assert!((1.0..=50.0).contains(&v));
        }
    }

    #[test]
    fn partsupp_has_four_suppliers_per_part() {
        let db = small_db();
        let ps = db.table(TableId::Partsupp);
        let pk = ps.column("ps_partkey");
        let mut counts = std::collections::HashMap::new();
        for i in 0..ps.n_rows() {
            *counts.entry(pk.get_f64(i) as i64).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 4));
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn rejects_non_positive_sf() {
        GeneratedDb::generate(0.0, 1);
    }
}
