//! Scalar values and calendar helpers shared across the TPC-H substrate.

use serde::{Deserialize, Serialize};

/// A typed scalar value: the common currency for predicates, parameters
/// and generated row fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// 64-bit integer (keys, counts, sizes).
    Int(i64),
    /// 64-bit float (prices, discounts, balances).
    Float(f64),
    /// Calendar date as days since 1992-01-01 (the TPC-H STARTDATE).
    Date(i32),
    /// Categorical value encoded as a dictionary code (segment, brand, ...).
    Cat(u32),
}

impl Scalar {
    /// Numeric view used for comparisons and histogram bucketing: every
    /// scalar maps onto a total order on f64.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Scalar::Int(v) => v as f64,
            Scalar::Float(v) => v,
            Scalar::Date(v) => v as f64,
            Scalar::Cat(v) => v as f64,
        }
    }
}

/// Comparison operators appearing in template predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Evaluates `left op right` on the numeric view.
    pub fn eval(&self, left: f64, right: f64) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
            CmpOp::Ne => left != right,
        }
    }
}

/// The TPC-H calendar starts at 1992-01-01 (day 0) and ends at 1998-12-31.
pub const START_YEAR: i32 = 1992;
/// Last day of the TPC-H calendar (1998-12-31) as a day number.
pub const END_DATE: i32 = 2556;

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Converts a calendar date to days since 1992-01-01.
///
/// # Panics
/// Panics on out-of-range dates (years outside 1992..=1998 are allowed for
/// arithmetic convenience but month/day must be valid).
pub fn date(year: i32, month: u32, day: u32) -> i32 {
    assert!((1..=12).contains(&month), "invalid month {month}");
    let month_idx = (month - 1) as usize;
    let mut max_day = DAYS_IN_MONTH[month_idx];
    if month == 2 && is_leap(year) {
        max_day += 1;
    }
    assert!(
        (1..=max_day as u32).contains(&day),
        "invalid day {day} for {year}-{month:02}"
    );
    let mut days: i32 = 0;
    if year >= START_YEAR {
        for y in START_YEAR..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..START_YEAR {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for (m, &len) in DAYS_IN_MONTH.iter().enumerate().take(month_idx) {
        days += len;
        if m == 1 && is_leap(year) {
            days += 1;
        }
    }
    days + day as i32 - 1
}

/// Formats a day number as `YYYY-MM-DD` for display/logging.
pub fn format_date(mut days: i32) -> String {
    let mut year = START_YEAR;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if days >= len {
            days -= len;
            year += 1;
        } else if days < 0 {
            year -= 1;
            days += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 0usize;
    loop {
        let mut len = DAYS_IN_MONTH[month];
        if month == 1 && is_leap(year) {
            len += 1;
        }
        if days >= len {
            days -= len;
            month += 1;
        } else {
            break;
        }
    }
    format!("{year}-{:02}-{:02}", month + 1, days + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(date(1992, 1, 1), 0);
        assert_eq!(date(1992, 1, 2), 1);
        assert_eq!(date(1992, 2, 1), 31);
    }

    #[test]
    fn leap_years_are_respected() {
        // 1992 is a leap year: Feb 29 exists and March 1 is day 60.
        assert_eq!(date(1992, 2, 29), 59);
        assert_eq!(date(1992, 3, 1), 60);
        assert_eq!(date(1993, 1, 1), 366);
    }

    #[test]
    fn end_date_constant_matches_calendar() {
        assert_eq!(date(1998, 12, 31), END_DATE);
    }

    #[test]
    fn format_roundtrips() {
        for &(y, m, d) in &[
            (1992, 1, 1),
            (1992, 2, 29),
            (1995, 3, 15),
            (1998, 12, 31),
            (1994, 1, 1),
        ] {
            let n = date(y, m, d);
            assert_eq!(format_date(n), format!("{y}-{m:02}-{d:02}"));
        }
    }

    #[test]
    #[should_panic(expected = "invalid day")]
    fn rejects_feb_29_in_non_leap_year() {
        date(1993, 2, 29);
    }

    #[test]
    fn scalar_numeric_view_orders_consistently() {
        assert_eq!(Scalar::Int(5).as_f64(), 5.0);
        assert_eq!(Scalar::Date(10).as_f64(), 10.0);
        assert_eq!(Scalar::Cat(3).as_f64(), 3.0);
        assert!(CmpOp::Lt.eval(Scalar::Int(1).as_f64(), Scalar::Int(2).as_f64()));
    }

    #[test]
    fn cmp_ops_evaluate() {
        assert!(CmpOp::Eq.eval(1.0, 1.0));
        assert!(CmpOp::Ne.eval(1.0, 2.0));
        assert!(CmpOp::Le.eval(2.0, 2.0));
        assert!(CmpOp::Ge.eval(2.0, 2.0));
        assert!(CmpOp::Gt.eval(3.0, 2.0));
        assert!(!CmpOp::Lt.eval(3.0, 2.0));
    }
}
