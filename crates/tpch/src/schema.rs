//! The eight TPC-H tables: identities, columns, primary keys, row widths.

use serde::Serialize;

/// The TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum TableId {
    /// REGION (5 rows).
    Region,
    /// NATION (25 rows).
    Nation,
    /// SUPPLIER (SF × 10 000 rows).
    Supplier,
    /// CUSTOMER (SF × 150 000 rows).
    Customer,
    /// PART (SF × 200 000 rows).
    Part,
    /// PARTSUPP (SF × 800 000 rows).
    Partsupp,
    /// ORDERS (SF × 1 500 000 rows).
    Orders,
    /// LINEITEM (≈ SF × 6 000 000 rows).
    Lineitem,
}

/// All tables in dependency order (referenced tables first).
pub const ALL_TABLES: [TableId; 8] = [
    TableId::Region,
    TableId::Nation,
    TableId::Supplier,
    TableId::Customer,
    TableId::Part,
    TableId::Partsupp,
    TableId::Orders,
    TableId::Lineitem,
];

impl TableId {
    /// Lower-case table name as it appears in the TPC-H specification.
    pub fn name(&self) -> &'static str {
        match self {
            TableId::Region => "region",
            TableId::Nation => "nation",
            TableId::Supplier => "supplier",
            TableId::Customer => "customer",
            TableId::Part => "part",
            TableId::Partsupp => "partsupp",
            TableId::Orders => "orders",
            TableId::Lineitem => "lineitem",
        }
    }

    /// Exact row count at the given scale factor, per the specification
    /// (LINEITEM is approximately 6M × SF; we use the per-order line-count
    /// model of the generator: an average of slightly over 4 lines/order).
    pub fn row_count(&self, sf: f64) -> u64 {
        let scaled = |base: f64| (base * sf).round().max(1.0) as u64;
        match self {
            TableId::Region => 5,
            TableId::Nation => 25,
            TableId::Supplier => scaled(10_000.0),
            TableId::Customer => scaled(150_000.0),
            TableId::Part => scaled(200_000.0),
            TableId::Partsupp => scaled(800_000.0),
            TableId::Orders => scaled(1_500_000.0),
            TableId::Lineitem => scaled(6_001_215.0),
        }
    }

    /// Average tuple width in bytes (including per-tuple header overhead),
    /// approximating the widths PostgreSQL reports for TPC-H tables.
    pub fn tuple_width(&self) -> u32 {
        match self {
            TableId::Region => 120,
            TableId::Nation => 128,
            TableId::Supplier => 160,
            TableId::Customer => 180,
            TableId::Part => 160,
            TableId::Partsupp => 150,
            TableId::Orders => 110,
            TableId::Lineitem => 112,
        }
    }

    /// Number of 8 KiB heap pages at the given scale factor (90% fill).
    pub fn pages(&self, sf: f64) -> u64 {
        let bytes = self.row_count(sf) as f64 * self.tuple_width() as f64;
        (bytes / (8192.0 * 0.9)).ceil().max(1.0) as u64
    }

    /// Primary-key column (for composite keys, the leading column).
    pub fn primary_key(&self) -> &'static str {
        match self {
            TableId::Region => "r_regionkey",
            TableId::Nation => "n_nationkey",
            TableId::Supplier => "s_suppkey",
            TableId::Customer => "c_custkey",
            TableId::Part => "p_partkey",
            TableId::Partsupp => "ps_partkey",
            TableId::Orders => "o_orderkey",
            TableId::Lineitem => "l_orderkey",
        }
    }

    /// Columns of this table (the subset used by the 22 query templates).
    pub fn columns(&self) -> &'static [&'static str] {
        match self {
            TableId::Region => &["r_regionkey", "r_name"],
            TableId::Nation => &["n_nationkey", "n_name", "n_regionkey"],
            TableId::Supplier => &[
                "s_suppkey",
                "s_name",
                "s_nationkey",
                "s_phone",
                "s_acctbal",
                "s_comment",
            ],
            TableId::Customer => &[
                "c_custkey",
                "c_name",
                "c_nationkey",
                "c_phone",
                "c_acctbal",
                "c_mktsegment",
                "c_comment",
            ],
            TableId::Part => &[
                "p_partkey",
                "p_name",
                "p_mfgr",
                "p_brand",
                "p_type",
                "p_size",
                "p_container",
                "p_retailprice",
            ],
            TableId::Partsupp => &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
            TableId::Orders => &[
                "o_orderkey",
                "o_custkey",
                "o_orderstatus",
                "o_totalprice",
                "o_orderdate",
                "o_orderpriority",
                "o_clerk",
                "o_shippriority",
                "o_comment",
            ],
            TableId::Lineitem => &[
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_linenumber",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
                "l_returnflag",
                "l_linestatus",
                "l_shipdate",
                "l_commitdate",
                "l_receiptdate",
                "l_shipinstruct",
                "l_shipmode",
                "l_comment",
            ],
        }
    }

    /// Whether the named column belongs to this table.
    pub fn has_column(&self, column: &str) -> bool {
        self.columns().contains(&column)
    }
}

/// A (table, column) reference used throughout the query IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ColRef {
    /// Owning table.
    pub table: TableId,
    /// Column name (static — all columns are known at compile time).
    pub column: &'static str,
}

impl ColRef {
    /// Creates a reference, validating that the column exists in debug
    /// builds.
    pub fn new(table: TableId, column: &'static str) -> Self {
        debug_assert!(
            table.has_column(column),
            "{} has no column {}",
            table.name(),
            column
        );
        ColRef { table, column }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table.name(), self.column)
    }
}

/// Shorthand constructor used heavily by template definitions.
pub fn col(table: TableId, column: &'static str) -> ColRef {
    ColRef::new(table, column)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_scale_linearly() {
        assert_eq!(TableId::Lineitem.row_count(1.0), 6_001_215);
        assert_eq!(TableId::Orders.row_count(10.0), 15_000_000);
        assert_eq!(TableId::Region.row_count(10.0), 5);
        assert_eq!(TableId::Nation.row_count(0.01), 25);
        assert_eq!(TableId::Customer.row_count(0.01), 1_500);
    }

    #[test]
    fn pages_are_positive_and_scale() {
        for t in ALL_TABLES {
            assert!(t.pages(0.01) >= 1);
            assert!(t.pages(10.0) >= t.pages(1.0));
        }
        // SF-1 lineitem should be on the order of 10^5 pages.
        let p = TableId::Lineitem.pages(1.0);
        assert!((50_000..200_000).contains(&p), "pages = {p}");
    }

    #[test]
    fn primary_keys_are_columns() {
        for t in ALL_TABLES {
            assert!(t.has_column(t.primary_key()), "{}", t.name());
        }
    }

    #[test]
    fn colref_display_and_validation() {
        let c = col(TableId::Lineitem, "l_shipdate");
        assert_eq!(c.to_string(), "lineitem.l_shipdate");
        assert!(TableId::Lineitem.has_column("l_quantity"));
        assert!(!TableId::Lineitem.has_column("o_orderdate"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "has no column")]
    fn colref_rejects_unknown_column() {
        ColRef::new(TableId::Region, "l_shipdate");
    }
}
