//! Workload construction: seeded batches of template instances.
//!
//! The paper's datasets hold ≈ 55 instances per template (Section 5.1);
//! [`Workload::generate`] reproduces that layout for any template subset
//! and scale factor.

use crate::spec::QuerySpec;
use crate::templates;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated workload: an ordered list of query instances.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Scale factor the workload targets.
    pub sf: f64,
    /// Query instances (template-major order).
    pub queries: Vec<QuerySpec>,
}

impl Workload {
    /// Generates `per_template` instances of each listed template at scale
    /// factor `sf`, deterministically from `seed`.
    pub fn generate(template_ids: &[u8], per_template: usize, sf: f64, seed: u64) -> Workload {
        let mut queries = Vec::with_capacity(template_ids.len() * per_template);
        for &t in template_ids {
            // Independent stream per template so adding/removing templates
            // does not reshuffle the others.
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for _ in 0..per_template {
                queries.push(templates::instantiate(t, sf, &mut rng));
            }
        }
        Workload { sf, queries }
    }

    /// The paper's static-workload configuration: ≈55 instances per
    /// template.
    pub fn paper_static(template_ids: &[u8], sf: f64, seed: u64) -> Workload {
        Workload::generate(template_ids, 55, sf, seed)
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Distinct template ids present, in first-appearance order.
    pub fn template_ids(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for q in &self.queries {
            if !out.contains(&q.template) {
                out.push(q.template);
            }
        }
        out
    }

    /// Splits into (training, testing) by template: queries whose template
    /// is `held_out` become the test set (the paper's dynamic-workload
    /// protocol, Section 5.4).
    pub fn leave_template_out(&self, held_out: u8) -> (Vec<&QuerySpec>, Vec<&QuerySpec>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for q in &self.queries {
            if q.template == held_out {
                test.push(q);
            } else {
                train.push(q);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{FOURTEEN, TWELVE};

    #[test]
    fn generates_requested_shape() {
        let w = Workload::generate(&[1, 3, 6], 5, 1.0, 42);
        assert_eq!(w.len(), 15);
        assert_eq!(w.template_ids(), vec![1, 3, 6]);
        assert_eq!(w.queries.iter().filter(|q| q.template == 3).count(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&TWELVE, 3, 1.0, 9);
        let b = Workload::generate(&TWELVE, 3, 1.0, 9);
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.params, qb.params);
        }
    }

    #[test]
    fn per_template_streams_are_independent() {
        // Template 6's instances are identical whether or not template 1 is
        // also generated.
        let with = Workload::generate(&[1, 6], 4, 1.0, 5);
        let without = Workload::generate(&[6], 4, 1.0, 5);
        let a: Vec<_> = with
            .queries
            .iter()
            .filter(|q| q.template == 6)
            .map(|q| q.params.clone())
            .collect();
        let b: Vec<_> = without.queries.iter().map(|q| q.params.clone()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn leave_template_out_partitions() {
        let w = Workload::generate(&FOURTEEN, 2, 1.0, 1);
        let (train, test) = w.leave_template_out(9);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len(), w.len() - 2);
        assert!(test.iter().all(|q| q.template == 9));
        assert!(train.iter().all(|q| q.template != 9));
    }
}
