//! The 22 TPC-H query templates as parameterized logical plans.
//!
//! Each template samples its substitution parameters per the TPC-H
//! specification (dates, segments, brands, quantities, ...) and produces a
//! [`QuerySpec`] whose join order mirrors the plans PostgreSQL 8.4 chooses
//! for these queries. Templates also compute the *exact* truth
//! selectivities of any correlated predicate combinations from the
//! generative model (the estimator side never sees these — it works from
//! histograms and independence assumptions, like a real optimizer).
//!
//! Template subsets used by the paper's experiments:
//! - [`EIGHTEEN`]: the 18 templates that finish within the 1-hour limit at
//!   10 GB (excludes 16, 17, 20, 21).
//! - [`FOURTEEN`]: the 14 of those without PostgreSQL INITPLAN/SUBQUERY
//!   structures (operator-level modeling; excludes 2, 11, 15, 22).
//! - [`TWELVE`]: the 12 used in the dynamic-workload experiment
//!   (FOURTEEN minus 13 and 18).

use crate::dicts;
use crate::distributions::{
    self, joint_order_before_ship_after, joint_t12_chain, p_commit_before_receipt,
    p_name_contains_color, p_order_has_late_line, LINES_PER_ORDER,
};
use crate::schema::{col, ColRef, TableId};
use crate::spec::{
    AggFunc, AggregateSpec, GroupCount, Having, JoinKind, Predicate, QuerySpec, RelExpr,
};
use crate::types::{date, format_date, CmpOp, Scalar};
use rand::rngs::StdRng;
use rand::Rng;
use TableId::*;

/// All 22 template numbers.
pub const ALL_TEMPLATES: [u8; 22] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22,
];

/// The 18 templates that complete within the paper's 1-hour limit at 10 GB.
pub const EIGHTEEN: [u8; 18] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 18, 19, 22,
];

/// The 14 templates usable with operator-level models (no INITPLAN /
/// SUBQUERY structures).
pub const FOURTEEN: [u8; 14] = [1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 18, 19];

/// The 12 templates of the dynamic-workload experiment (Figure 9).
pub const TWELVE: [u8; 12] = [1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 19];

/// Instantiates a template with random parameters at the given scale
/// factor.
///
/// # Panics
/// Panics if `template` is not in `1..=22`.
pub fn instantiate(template: u8, sf: f64, rng: &mut StdRng) -> QuerySpec {
    match template {
        1 => t1(rng),
        2 => t2(rng),
        3 => t3(rng),
        4 => t4(rng),
        5 => t5(rng),
        6 => t6(rng),
        7 => t7(rng),
        8 => t8(rng),
        9 => t9(rng),
        10 => t10(rng),
        11 => t11(sf, rng),
        12 => t12(rng),
        13 => t13(rng),
        14 => t14(rng),
        15 => t15(sf, rng),
        16 => t16(rng),
        17 => t17(rng),
        18 => t18(rng),
        19 => t19(rng),
        20 => t20(sf, rng),
        21 => t21(rng),
        22 => t22(rng),
        other => panic!("unknown TPC-H template {other}"),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

fn cmp(c: ColRef, op: CmpOp, v: Scalar) -> Predicate {
    Predicate::Cmp { col: c, op, value: v }
}

fn between(c: ColRef, lo: Scalar, hi: Scalar) -> Predicate {
    Predicate::Between { col: c, lo, hi }
}

fn agg(input: RelExpr, spec: AggregateSpec) -> RelExpr {
    RelExpr::Aggregate {
        input: Box::new(input),
        spec,
    }
}

fn sort(input: RelExpr, keys: u32) -> RelExpr {
    RelExpr::Sort {
        input: Box::new(input),
        keys,
    }
}

fn limit(input: RelExpr, count: u64) -> RelExpr {
    RelExpr::Limit {
        input: Box::new(input),
        count,
    }
}

fn join_kind(
    kind: JoinKind,
    left: RelExpr,
    right: RelExpr,
    on: (ColRef, ColRef),
    truth_correction: f64,
    extra_filter_sel: f64,
) -> RelExpr {
    RelExpr::Join {
        kind,
        on,
        left: Box::new(left),
        right: Box::new(right),
        truth_correction,
        extra_filter_sel,
    }
}

/// A year window `[Jan 1 Y, Jan 1 Y+1)` as inclusive day bounds.
fn year_window(y: i32) -> (i32, i32) {
    (date(y, 1, 1), date(y + 1, 1, 1) - 1)
}

/// A window of `months` starting at (y, m), inclusive day bounds.
fn month_window(y: i32, m: u32, months: u32) -> (i32, i32) {
    let end_m = m + months;
    let (ey, em) = if end_m > 12 {
        (y + ((end_m - 1) / 12) as i32, (end_m - 1) % 12 + 1)
    } else {
        (y, end_m)
    };
    (date(y, m, 1), date(ey, em, 1) - 1)
}

/// Expected fraction of rows that are the minimum of their group when each
/// of `group_size` candidate members independently survives with
/// probability `member_sel` (template 2's min-cost-supplier filter):
/// `E[1/k | k >= 1]` with `k = 1 + Binomial(group_size - 1, member_sel)`.
fn min_fraction(group_size: u32, member_sel: f64) -> f64 {
    let m = group_size.saturating_sub(1);
    let mut total = 0.0;
    for j in 0..=m {
        let combos = binomial(m, j);
        let p = combos * member_sel.powi(j as i32) * (1.0 - member_sel).powi((m - j) as i32);
        total += p / (1.0 + j as f64);
    }
    total
}

fn binomial(n: u32, k: u32) -> f64 {
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// Exact P(sum of the line quantities of an order > q): the order has
/// `k ~ U{1..7}` lines with quantities `U{1..50}` — computed by dynamic
/// programming over the discrete convolution (template 18's HAVING truth).
pub fn p_order_quantity_sum_gt(q: f64) -> f64 {
    let (klo, khi) = LINES_PER_ORDER;
    let mut total = 0.0;
    let pk = 1.0 / (khi - klo + 1) as f64;
    // dist[s] = P(sum == s) for the current k.
    let mut dist = vec![1.0f64]; // sum = 0 with probability 1 at k = 0.
    for k in 1..=khi {
        let mut next = vec![0.0f64; dist.len() + 50];
        for (s, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            for v in 1..=50usize {
                next[s + v] += p / 50.0;
            }
        }
        dist = next;
        if k >= klo {
            let above: f64 = dist
                .iter()
                .enumerate()
                .filter(|&(s, _)| s as f64 > q)
                .map(|(_, &p)| p)
                .sum();
            total += pk * above;
        }
    }
    total
}

/// Monte-Carlo estimate (fixed seed, deterministic) of template 11's HAVING
/// truth: P(a part's total `ps_supplycost × ps_availqty` over its surviving
/// suppliers exceeds `fraction` of the grand total), where each of the four
/// suppliers survives the nation filter with probability 1/25.
fn t11_having_fraction(sf: f64, fraction: f64) -> f64 {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0x0071_1711);
    let n_parts = (200_000.0 * sf) as usize;
    let expected_rows = 800_000.0 * sf / 25.0;
    let mean_value = 500.5 * 5000.0;
    let threshold = fraction * expected_rows * mean_value;
    let samples = 20_000usize;
    let mut pass = 0usize;
    let mut nonempty = 0usize;
    for _ in 0..samples {
        let mut sum = 0.0;
        let mut k = 0;
        for _ in 0..4 {
            if rng.gen_range(0..25) == 0 {
                k += 1;
                let cost: f64 = rng.gen_range(1.0..1000.0);
                let qty: f64 = rng.gen_range(1.0..9999.0);
                sum += cost * qty;
            }
        }
        if k > 0 {
            nonempty += 1;
            if sum > threshold {
                pass += 1;
            }
        }
    }
    let _ = n_parts;
    if nonempty == 0 {
        0.0
    } else {
        (pass as f64 / nonempty as f64).max(1e-9)
    }
}

// ---------------------------------------------------------------------------
// Template definitions.
// ---------------------------------------------------------------------------

/// Q1 — pricing summary report. Scan LINEITEM below a shipdate cutoff and
/// compute eight numeric aggregates per (returnflag, linestatus).
fn t1(rng: &mut StdRng) -> QuerySpec {
    let delta = rng.gen_range(60..=120);
    let cutoff = date(1998, 12, 1) - delta;
    let scan = RelExpr::scan_where(
        Lineitem,
        vec![cmp(
            col(Lineitem, "l_shipdate"),
            CmpOp::Le,
            Scalar::Date(cutoff),
        )],
    );
    let aggregated = agg(
        scan,
        AggregateSpec {
            group_by: vec![col(Lineitem, "l_returnflag"), col(Lineitem, "l_linestatus")],
            aggs: vec![
                AggFunc::Sum(col(Lineitem, "l_quantity")),
                AggFunc::Sum(col(Lineitem, "l_extendedprice")),
                AggFunc::Sum(col(Lineitem, "l_extendedprice")),
                AggFunc::Sum(col(Lineitem, "l_extendedprice")),
                AggFunc::Avg(col(Lineitem, "l_quantity")),
                AggFunc::Avg(col(Lineitem, "l_extendedprice")),
                AggFunc::Avg(col(Lineitem, "l_discount")),
                AggFunc::Count,
            ],
            // Eight aggregates, several with multi-term numeric expressions
            // (disc_price, charge) — the paper's example of software
            // numeric arithmetic dominating CPU time.
            numeric_ops: 20,
            groups: GroupCount::Fixed(6.0),
            having: None,
        },
    );
    QuerySpec {
        template: 1,
        params: vec![("delta".into(), delta.to_string())],
        root: sort(aggregated, 2),
    }
}

/// Q2 — minimum-cost supplier, with a correlated MIN subquery (SubPlan).
fn t2(rng: &mut StdRng) -> QuerySpec {
    let size = rng.gen_range(1..=50i64);
    let suffix = rng.gen_range(0..5u32);
    let region = rng.gen_range(0..5u32);
    let type_codes: Vec<Scalar> = (0..dicts::N_TYPES)
        .filter(|&t| t % 5 == suffix)
        .map(Scalar::Cat)
        .collect();
    let part = RelExpr::scan_where(
        Part,
        vec![
            cmp(col(Part, "p_size"), CmpOp::Eq, Scalar::Int(size)),
            Predicate::InSet {
                col: col(Part, "p_type"),
                values: type_codes,
            },
        ],
    );
    let main = RelExpr::inner_join(
        RelExpr::inner_join(
            RelExpr::inner_join(
                RelExpr::inner_join(
                    part,
                    RelExpr::scan(Partsupp),
                    (col(Part, "p_partkey"), col(Partsupp, "ps_partkey")),
                ),
                RelExpr::scan(Supplier),
                (col(Partsupp, "ps_suppkey"), col(Supplier, "s_suppkey")),
            ),
            RelExpr::scan(Nation),
            (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
        ),
        RelExpr::scan_where(
            Region,
            vec![cmp(col(Region, "r_name"), CmpOp::Eq, Scalar::Cat(region))],
        ),
        (col(Nation, "n_regionkey"), col(Region, "r_regionkey")),
    );
    // The correlated MIN subquery probes PARTSUPP by its part key (an
    // index probe of ~4 rows per outer part under PostgreSQL's SubPlan
    // execution); the supplier/nation/region restriction of the subquery
    // is folded into `truth_sel` below.
    let subquery = agg(
        RelExpr::scan_where(
            Partsupp,
            vec![cmp(col(Partsupp, "ps_partkey"), CmpOp::Eq, Scalar::Int(1))],
        ),
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Min(col(Partsupp, "ps_supplycost"))],
            numeric_ops: 1,
            groups: GroupCount::One,
            having: None,
        },
    );
    let filtered = RelExpr::ScalarSubqueryFilter {
        input: Box::new(main),
        subquery: Box::new(subquery),
        truth_sel: min_fraction(4, 1.0 / 5.0),
        correlated: true,
    };
    QuerySpec {
        template: 2,
        params: vec![
            ("size".into(), size.to_string()),
            ("type_suffix".into(), suffix.to_string()),
            ("region".into(), dicts::REGIONS[region as usize].into()),
        ],
        root: limit(sort(filtered, 4), 100),
    }
}

/// Q3 — shipping-priority: customer ⋈ orders ⋈ lineitem with correlated
/// order/ship date cutoffs.
fn t3(rng: &mut StdRng) -> QuerySpec {
    let segment = rng.gen_range(0..5u32);
    let day = rng.gen_range(1..=31u32);
    let cut = date(1995, 3, day.min(31));
    let sel_o = distributions::selectivity(col(Orders, "o_orderdate"), CmpOp::Lt, cut as f64, 1.0);
    let sel_l =
        distributions::selectivity(col(Lineitem, "l_shipdate"), CmpOp::Gt, cut as f64, 1.0);
    let joint = joint_order_before_ship_after(cut);
    let correction = if sel_o * sel_l > 0.0 {
        joint / (sel_o * sel_l)
    } else {
        1.0
    };
    let customer = RelExpr::scan_where(
        Customer,
        vec![cmp(
            col(Customer, "c_mktsegment"),
            CmpOp::Eq,
            Scalar::Cat(segment),
        )],
    );
    let orders = RelExpr::scan_where(
        Orders,
        vec![cmp(col(Orders, "o_orderdate"), CmpOp::Lt, Scalar::Date(cut))],
    );
    let lineitem = RelExpr::scan_where(
        Lineitem,
        vec![cmp(
            col(Lineitem, "l_shipdate"),
            CmpOp::Gt,
            Scalar::Date(cut),
        )],
    );
    let co = RelExpr::inner_join(
        customer,
        orders,
        (col(Customer, "c_custkey"), col(Orders, "o_custkey")),
    );
    let col_join = join_kind(
        JoinKind::Inner,
        co,
        lineitem,
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
        correction,
        1.0,
    );
    let aggregated = agg(
        col_join,
        AggregateSpec {
            group_by: vec![
                col(Lineitem, "l_orderkey"),
                col(Orders, "o_orderdate"),
                col(Orders, "o_shippriority"),
            ],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 3,
            groups: GroupCount::DistinctOf(col(Lineitem, "l_orderkey")),
            having: None,
        },
    );
    QuerySpec {
        template: 3,
        params: vec![
            ("segment".into(), dicts::SEGMENTS[segment as usize].into()),
            ("date".into(), format_date(cut)),
        ],
        root: limit(sort(aggregated, 2), 10),
    }
}

/// Q4 — order-priority checking: EXISTS (late line) per order in a quarter.
fn t4(rng: &mut StdRng) -> QuerySpec {
    let year = rng.gen_range(1993..=1997);
    let month = [1u32, 4, 7, 10][rng.gen_range(0..4)];
    let (lo, hi) = month_window(year, month, 3);
    let orders = RelExpr::scan_where(
        Orders,
        vec![between(
            col(Orders, "o_orderdate"),
            Scalar::Date(lo),
            Scalar::Date(hi),
        )],
    );
    let lineitem = RelExpr::scan_where(
        Lineitem,
        vec![Predicate::ColCmp {
            left: col(Lineitem, "l_commitdate"),
            op: CmpOp::Lt,
            right: col(Lineitem, "l_receiptdate"),
        }],
    );
    let semi = join_kind(
        JoinKind::Semi,
        orders,
        lineitem,
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
        p_order_has_late_line(),
        1.0,
    );
    let aggregated = agg(
        semi,
        AggregateSpec {
            group_by: vec![col(Orders, "o_orderpriority")],
            aggs: vec![AggFunc::Count],
            numeric_ops: 1,
            groups: GroupCount::Fixed(5.0),
            having: None,
        },
    );
    QuerySpec {
        template: 4,
        params: vec![("quarter".into(), format!("{year}-{month:02}"))],
        root: sort(aggregated, 1),
    }
}

/// Q5 — local-supplier volume: six-way join filtered by region and year.
fn t5(rng: &mut StdRng) -> QuerySpec {
    let region = rng.gen_range(0..5u32);
    let year = rng.gen_range(1993..=1997);
    let (lo, hi) = year_window(year);
    let rn = RelExpr::inner_join(
        RelExpr::scan_where(
            Region,
            vec![cmp(col(Region, "r_name"), CmpOp::Eq, Scalar::Cat(region))],
        ),
        RelExpr::scan(Nation),
        (col(Region, "r_regionkey"), col(Nation, "n_regionkey")),
    );
    let rnc = RelExpr::inner_join(
        rn,
        RelExpr::scan(Customer),
        (col(Nation, "n_nationkey"), col(Customer, "c_nationkey")),
    );
    let rnco = RelExpr::inner_join(
        rnc,
        RelExpr::scan_where(
            Orders,
            vec![between(
                col(Orders, "o_orderdate"),
                Scalar::Date(lo),
                Scalar::Date(hi),
            )],
        ),
        (col(Customer, "c_custkey"), col(Orders, "o_custkey")),
    );
    let rncol = RelExpr::inner_join(
        rnco,
        RelExpr::scan(Lineitem),
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
    );
    // s_nationkey = c_nationkey is an extra join predicate both sides know:
    // 1/25 of supplier matches are local.
    let full = join_kind(
        JoinKind::Inner,
        rncol,
        RelExpr::scan(Supplier),
        (col(Lineitem, "l_suppkey"), col(Supplier, "s_suppkey")),
        1.0,
        1.0 / 25.0,
    );
    let aggregated = agg(
        full,
        AggregateSpec {
            group_by: vec![col(Nation, "n_name")],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 3,
            groups: GroupCount::Fixed(5.0),
            having: None,
        },
    );
    QuerySpec {
        template: 5,
        params: vec![
            ("region".into(), dicts::REGIONS[region as usize].into()),
            ("year".into(), year.to_string()),
        ],
        root: sort(aggregated, 1),
    }
}

/// Q6 — forecasting revenue change: single-table scan + scalar aggregate.
fn t6(rng: &mut StdRng) -> QuerySpec {
    let year = rng.gen_range(1993..=1997);
    let (lo, hi) = year_window(year);
    let disc = rng.gen_range(2..=9i64); // discount code (percent)
    let qty = rng.gen_range(24..=25i64);
    let scan = RelExpr::scan_where(
        Lineitem,
        vec![
            between(col(Lineitem, "l_shipdate"), Scalar::Date(lo), Scalar::Date(hi)),
            between(
                col(Lineitem, "l_discount"),
                Scalar::Int(disc - 1),
                Scalar::Int(disc + 1),
            ),
            cmp(col(Lineitem, "l_quantity"), CmpOp::Lt, Scalar::Int(qty)),
        ],
    );
    let aggregated = agg(
        scan,
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 2,
            groups: GroupCount::One,
            having: None,
        },
    );
    QuerySpec {
        template: 6,
        params: vec![
            ("year".into(), year.to_string()),
            ("discount".into(), format!("0.0{disc}")),
            ("quantity".into(), qty.to_string()),
        ],
        root: aggregated,
    }
}

/// Q7 — volume shipping between two nations over 1995–1996.
fn t7(rng: &mut StdRng) -> QuerySpec {
    let n1 = rng.gen_range(0..25u32);
    let mut n2 = rng.gen_range(0..25u32);
    while n2 == n1 {
        n2 = rng.gen_range(0..25u32);
    }
    let (lo, _) = year_window(1995);
    let (_, hi) = year_window(1996);
    let pair = vec![Scalar::Cat(n1), Scalar::Cat(n2)];
    // The nation restrictions are pushed below the big joins, as
    // PostgreSQL's join-order search does for Q7.
    let sn = RelExpr::inner_join(
        RelExpr::scan(Supplier),
        RelExpr::scan_where(
            Nation,
            vec![Predicate::InSet {
                col: col(Nation, "n_name"),
                values: pair.clone(),
            }],
        ),
        (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
    );
    let snl = RelExpr::inner_join(
        sn,
        RelExpr::scan_where(
            Lineitem,
            vec![between(
                col(Lineitem, "l_shipdate"),
                Scalar::Date(lo),
                Scalar::Date(hi),
            )],
        ),
        (col(Supplier, "s_suppkey"), col(Lineitem, "l_suppkey")),
    );
    let snlo = RelExpr::inner_join(
        snl,
        RelExpr::scan(Orders),
        (col(Lineitem, "l_orderkey"), col(Orders, "o_orderkey")),
    );
    let cn = RelExpr::inner_join(
        RelExpr::scan(Customer),
        RelExpr::scan_where(
            Nation,
            vec![Predicate::InSet {
                col: col(Nation, "n_name"),
                values: pair,
            }],
        ),
        (col(Customer, "c_nationkey"), col(Nation, "n_nationkey")),
    );
    // Only the (n1, n2) / (n2, n1) combinations remain of the four
    // possible nation pairings.
    let full = join_kind(
        JoinKind::Inner,
        snlo,
        cn,
        (col(Orders, "o_custkey"), col(Customer, "c_custkey")),
        1.0,
        0.5,
    );
    let aggregated = agg(
        full,
        AggregateSpec {
            group_by: vec![col(Nation, "n_name")],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 4,
            groups: GroupCount::Fixed(4.0),
            having: None,
        },
    );
    QuerySpec {
        template: 7,
        params: vec![
            ("nation1".into(), dicts::NATIONS[n1 as usize].into()),
            ("nation2".into(), dicts::NATIONS[n2 as usize].into()),
        ],
        root: sort(aggregated, 3),
    }
}

/// Q8 — national market share of a part type in a region, 1995–1996.
fn t8(rng: &mut StdRng) -> QuerySpec {
    let ptype = rng.gen_range(0..dicts::N_TYPES);
    let region = rng.gen_range(0..5u32);
    let (lo, _) = year_window(1995);
    let (_, hi) = year_window(1996);
    let pl = RelExpr::inner_join(
        RelExpr::scan_where(
            Part,
            vec![cmp(col(Part, "p_type"), CmpOp::Eq, Scalar::Cat(ptype))],
        ),
        RelExpr::scan(Lineitem),
        (col(Part, "p_partkey"), col(Lineitem, "l_partkey")),
    );
    let pls = RelExpr::inner_join(
        pl,
        RelExpr::scan(Supplier),
        (col(Lineitem, "l_suppkey"), col(Supplier, "s_suppkey")),
    );
    let plso = RelExpr::inner_join(
        pls,
        RelExpr::scan_where(
            Orders,
            vec![between(
                col(Orders, "o_orderdate"),
                Scalar::Date(lo),
                Scalar::Date(hi),
            )],
        ),
        (col(Lineitem, "l_orderkey"), col(Orders, "o_orderkey")),
    );
    let plsoc = RelExpr::inner_join(
        plso,
        RelExpr::scan(Customer),
        (col(Orders, "o_custkey"), col(Customer, "c_custkey")),
    );
    let with_cn = RelExpr::inner_join(
        plsoc,
        RelExpr::scan(Nation),
        (col(Customer, "c_nationkey"), col(Nation, "n_nationkey")),
    );
    let with_region = RelExpr::inner_join(
        with_cn,
        RelExpr::scan_where(
            Region,
            vec![cmp(col(Region, "r_name"), CmpOp::Eq, Scalar::Cat(region))],
        ),
        (col(Nation, "n_regionkey"), col(Region, "r_regionkey")),
    );
    let with_sn = RelExpr::inner_join(
        with_region,
        RelExpr::scan(Nation),
        (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
    );
    let aggregated = agg(
        with_sn,
        AggregateSpec {
            group_by: vec![col(Orders, "o_orderdate")],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 6,
            groups: GroupCount::Fixed(2.0),
            having: None,
        },
    );
    QuerySpec {
        template: 8,
        params: vec![
            ("type".into(), dicts::type_name(ptype)),
            ("region".into(), dicts::REGIONS[region as usize].into()),
        ],
        root: sort(aggregated, 1),
    }
}

/// Q9 — product-type profit: the heaviest join pipeline (part by name color,
/// all of lineitem, partsupp, orders, nation).
fn t9(rng: &mut StdRng) -> QuerySpec {
    let color = rng.gen_range(0..dicts::N_COLORS);
    let pl = RelExpr::inner_join(
        RelExpr::scan_where(
            Part,
            vec![Predicate::NameLike {
                col: col(Part, "p_name"),
                color,
            }],
        ),
        RelExpr::scan(Lineitem),
        (col(Part, "p_partkey"), col(Lineitem, "l_partkey")),
    );
    let pls = RelExpr::inner_join(
        pl,
        RelExpr::scan(Supplier),
        (col(Lineitem, "l_suppkey"), col(Supplier, "s_suppkey")),
    );
    // partsupp joins on (partkey, suppkey): each lineitem matches exactly
    // one of the four partsupp rows of its part.
    let plsps = join_kind(
        JoinKind::Inner,
        pls,
        RelExpr::scan(Partsupp),
        (col(Lineitem, "l_partkey"), col(Partsupp, "ps_partkey")),
        1.0,
        0.25,
    );
    let plspso = RelExpr::inner_join(
        plsps,
        RelExpr::scan(Orders),
        (col(Lineitem, "l_orderkey"), col(Orders, "o_orderkey")),
    );
    let full = RelExpr::inner_join(
        plspso,
        RelExpr::scan(Nation),
        (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
    );
    let aggregated = agg(
        full,
        AggregateSpec {
            group_by: vec![col(Nation, "n_name"), col(Orders, "o_orderdate")],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 6,
            groups: GroupCount::Fixed(175.0),
            having: None,
        },
    );
    QuerySpec {
        template: 9,
        params: vec![("color".into(), color.to_string())],
        root: sort(aggregated, 2),
    }
}

/// Q10 — returned items in a quarter, grouped per customer.
fn t10(rng: &mut StdRng) -> QuerySpec {
    let year = rng.gen_range(1993..=1994);
    let month = rng.gen_range(1..=12u32);
    let (lo, hi) = month_window(year, month, 3);
    let co = RelExpr::inner_join(
        RelExpr::scan(Customer),
        RelExpr::scan_where(
            Orders,
            vec![between(
                col(Orders, "o_orderdate"),
                Scalar::Date(lo),
                Scalar::Date(hi),
            )],
        ),
        (col(Customer, "c_custkey"), col(Orders, "o_custkey")),
    );
    let col_ = RelExpr::inner_join(
        co,
        RelExpr::scan_where(
            Lineitem,
            vec![cmp(
                col(Lineitem, "l_returnflag"),
                CmpOp::Eq,
                Scalar::Cat(0), // "R"
            )],
        ),
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
    );
    let full = RelExpr::inner_join(
        col_,
        RelExpr::scan(Nation),
        (col(Customer, "c_nationkey"), col(Nation, "n_nationkey")),
    );
    let aggregated = agg(
        full,
        AggregateSpec {
            group_by: vec![col(Customer, "c_custkey"), col(Nation, "n_name")],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 3,
            groups: GroupCount::DistinctOf(col(Customer, "c_custkey")),
            having: None,
        },
    );
    QuerySpec {
        template: 10,
        params: vec![("quarter".into(), format!("{year}-{month:02}"))],
        root: limit(sort(aggregated, 1), 20),
    }
}

/// Q11 — important stock identification: HAVING against an InitPlan scalar.
fn t11(sf: f64, rng: &mut StdRng) -> QuerySpec {
    let nation = rng.gen_range(0..25u32);
    let fraction = 0.0001 / sf.max(1e-6);
    let join_tree = |alias: u32| {
        let _ = alias;
        RelExpr::inner_join(
            RelExpr::inner_join(
                RelExpr::scan(Partsupp),
                RelExpr::scan(Supplier),
                (col(Partsupp, "ps_suppkey"), col(Supplier, "s_suppkey")),
            ),
            RelExpr::scan_where(
                Nation,
                vec![cmp(col(Nation, "n_name"), CmpOp::Eq, Scalar::Cat(nation))],
            ),
            (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
        )
    };
    let grouped = agg(
        join_tree(0),
        AggregateSpec {
            group_by: vec![col(Partsupp, "ps_partkey")],
            aggs: vec![AggFunc::Sum(col(Partsupp, "ps_supplycost"))],
            numeric_ops: 3,
            groups: GroupCount::DistinctOf(col(Partsupp, "ps_partkey")),
            having: None,
        },
    );
    let total = agg(
        join_tree(1),
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Sum(col(Partsupp, "ps_supplycost"))],
            numeric_ops: 3,
            groups: GroupCount::One,
            having: None,
        },
    );
    let filtered = RelExpr::ScalarSubqueryFilter {
        input: Box::new(grouped),
        subquery: Box::new(total),
        truth_sel: t11_having_fraction(sf, fraction),
        correlated: false,
    };
    QuerySpec {
        template: 11,
        params: vec![
            ("nation".into(), dicts::NATIONS[nation as usize].into()),
            ("fraction".into(), format!("{fraction:e}")),
        ],
        root: sort(filtered, 1),
    }
}

/// Q12 — shipping modes and delivery priority: the correlated date chain.
fn t12(rng: &mut StdRng) -> QuerySpec {
    let year = rng.gen_range(1993..=1997);
    let (lo, hi) = year_window(year);
    let m1 = rng.gen_range(0..7u32);
    let mut m2 = rng.gen_range(0..7u32);
    while m2 == m1 {
        m2 = rng.gen_range(0..7u32);
    }
    let chain_truth = joint_t12_chain(lo) * (2.0 / 7.0);
    let lineitem = RelExpr::Scan {
        table: Lineitem,
        filters: vec![
            Predicate::InSet {
                col: col(Lineitem, "l_shipmode"),
                values: vec![Scalar::Cat(m1), Scalar::Cat(m2)],
            },
            Predicate::ColCmp {
                left: col(Lineitem, "l_shipdate"),
                op: CmpOp::Lt,
                right: col(Lineitem, "l_commitdate"),
            },
            Predicate::ColCmp {
                left: col(Lineitem, "l_commitdate"),
                op: CmpOp::Lt,
                right: col(Lineitem, "l_receiptdate"),
            },
            between(
                col(Lineitem, "l_receiptdate"),
                Scalar::Date(lo),
                Scalar::Date(hi),
            ),
        ],
        truth_sel_override: Some(chain_truth),
    };
    let joined = RelExpr::inner_join(
        RelExpr::scan(Orders),
        lineitem,
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
    );
    let aggregated = agg(
        joined,
        AggregateSpec {
            group_by: vec![col(Lineitem, "l_shipmode")],
            aggs: vec![AggFunc::Count, AggFunc::Count],
            numeric_ops: 4,
            groups: GroupCount::Fixed(2.0),
            having: None,
        },
    );
    QuerySpec {
        template: 12,
        params: vec![
            ("shipmode1".into(), dicts::SHIP_MODES[m1 as usize].into()),
            ("shipmode2".into(), dicts::SHIP_MODES[m2 as usize].into()),
            ("year".into(), year.to_string()),
        ],
        root: sort(aggregated, 1),
    }
}

/// Q13 — customer order-count distribution: the left-outer join whose
/// Materialize sub-plan stars in the paper's hybrid example.
fn t13(rng: &mut StdRng) -> QuerySpec {
    // Word pairs for the NOT LIKE; all have comparable generative truth.
    let words = [
        ("special", "requests", 0.9852),
        ("pending", "deposits", 0.9870),
        ("unusual", "accounts", 0.9861),
        ("express", "packages", 0.9845),
    ];
    let (w1, w2, keep) = words[rng.gen_range(0..words.len())];
    let orders = RelExpr::scan_where(
        Orders,
        vec![Predicate::TextNotLike {
            col: col(Orders, "o_comment"),
            truth: keep,
        }],
    );
    let outer = join_kind(
        JoinKind::LeftOuter,
        RelExpr::scan(Customer),
        orders,
        (col(Customer, "c_custkey"), col(Orders, "o_custkey")),
        1.0,
        1.0,
    );
    let per_customer = agg(
        outer,
        AggregateSpec {
            group_by: vec![col(Customer, "c_custkey")],
            aggs: vec![AggFunc::Count],
            numeric_ops: 1,
            groups: GroupCount::DistinctOf(col(Customer, "c_custkey")),
            having: None,
        },
    );
    let distribution = agg(
        per_customer,
        AggregateSpec {
            group_by: vec![col(Customer, "c_custkey")],
            aggs: vec![AggFunc::Count],
            numeric_ops: 1,
            groups: GroupCount::Fixed(42.0),
            having: None,
        },
    );
    QuerySpec {
        template: 13,
        params: vec![
            ("word1".into(), w1.into()),
            ("word2".into(), w2.into()),
        ],
        root: sort(distribution, 2),
    }
}

/// Q14 — promotion effect over one month.
fn t14(rng: &mut StdRng) -> QuerySpec {
    let year = rng.gen_range(1993..=1997);
    let month = rng.gen_range(1..=12u32);
    let (lo, hi) = month_window(year, month, 1);
    let joined = RelExpr::inner_join(
        RelExpr::scan_where(
            Lineitem,
            vec![between(
                col(Lineitem, "l_shipdate"),
                Scalar::Date(lo),
                Scalar::Date(hi),
            )],
        ),
        RelExpr::scan(Part),
        (col(Lineitem, "l_partkey"), col(Part, "p_partkey")),
    );
    let aggregated = agg(
        joined,
        AggregateSpec {
            group_by: vec![],
            aggs: vec![
                AggFunc::Sum(col(Lineitem, "l_extendedprice")),
                AggFunc::Sum(col(Lineitem, "l_extendedprice")),
            ],
            numeric_ops: 6,
            groups: GroupCount::One,
            having: None,
        },
    );
    QuerySpec {
        template: 14,
        params: vec![("month".into(), format!("{year}-{month:02}"))],
        root: aggregated,
    }
}

/// Q15 — top supplier via a revenue view and a MAX InitPlan.
fn t15(sf: f64, rng: &mut StdRng) -> QuerySpec {
    let year = rng.gen_range(1993..=1997);
    let month = [1u32, 4, 7, 10][rng.gen_range(0..4)];
    let (lo, hi) = month_window(year, month, 3);
    let revenue_view = |_: u32| {
        agg(
            RelExpr::scan_where(
                Lineitem,
                vec![between(
                    col(Lineitem, "l_shipdate"),
                    Scalar::Date(lo),
                    Scalar::Date(hi),
                )],
            ),
            AggregateSpec {
                group_by: vec![col(Lineitem, "l_suppkey")],
                aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
                numeric_ops: 3,
                groups: GroupCount::DistinctOf(col(Lineitem, "l_suppkey")),
                having: None,
            },
        )
    };
    let max_rev = agg(
        revenue_view(1),
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Max(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 1,
            groups: GroupCount::One,
            having: None,
        },
    );
    let n_suppliers = TableId::Supplier.row_count(sf) as f64;
    let filtered = RelExpr::ScalarSubqueryFilter {
        input: Box::new(revenue_view(0)),
        subquery: Box::new(max_rev),
        truth_sel: 1.0 / n_suppliers,
        correlated: false,
    };
    let joined = RelExpr::inner_join(
        RelExpr::scan(Supplier),
        filtered,
        (col(Supplier, "s_suppkey"), col(Lineitem, "l_suppkey")),
    );
    QuerySpec {
        template: 15,
        params: vec![("quarter".into(), format!("{year}-{month:02}"))],
        root: sort(joined, 1),
    }
}

/// Q16 — parts/supplier relationship with an anti-join against complainers.
fn t16(rng: &mut StdRng) -> QuerySpec {
    let brand = rng.gen_range(0..dicts::N_BRANDS);
    let prefix = rng.gen_range(0..6u32);
    let mut sizes = Vec::new();
    while sizes.len() < 8 {
        let s = rng.gen_range(1..=50i64);
        if !sizes.contains(&s) {
            sizes.push(s);
        }
    }
    let part = RelExpr::scan_where(
        Part,
        vec![
            cmp(col(Part, "p_brand"), CmpOp::Ne, Scalar::Cat(brand)),
            Predicate::TextNotLike {
                col: col(Part, "p_type"),
                truth: 125.0 / 150.0, // NOT LIKE 'PREFIX%': 25 of 150 types match.
            },
            Predicate::InSet {
                col: col(Part, "p_size"),
                values: sizes.iter().map(|&s| Scalar::Int(s)).collect(),
            },
        ],
    );
    let joined = RelExpr::inner_join(
        part,
        RelExpr::scan(Partsupp),
        (col(Part, "p_partkey"), col(Partsupp, "ps_partkey")),
    );
    let anti = join_kind(
        JoinKind::Anti,
        joined,
        RelExpr::scan_where(
            Supplier,
            vec![Predicate::TextNotLike {
                col: col(Supplier, "s_comment"),
                truth: 0.0005, // suppliers *with* complaints
            }],
        ),
        (col(Partsupp, "ps_suppkey"), col(Supplier, "s_suppkey")),
        0.9995,
        1.0,
    );
    let aggregated = agg(
        anti,
        AggregateSpec {
            group_by: vec![col(Part, "p_brand"), col(Part, "p_type"), col(Part, "p_size")],
            aggs: vec![AggFunc::Count],
            numeric_ops: 2,
            groups: GroupCount::Fixed(27_840.0),
            having: None,
        },
    );
    QuerySpec {
        template: 16,
        params: vec![
            ("brand".into(), dicts::brand_name(brand)),
            ("type_prefix".into(), prefix.to_string()),
        ],
        root: sort(aggregated, 4),
    }
}

/// Q17 — small-quantity-order revenue: a correlated AVG SubPlan per row.
fn t17(rng: &mut StdRng) -> QuerySpec {
    let brand = rng.gen_range(0..dicts::N_BRANDS);
    let container = rng.gen_range(0..dicts::N_CONTAINERS);
    let joined = RelExpr::inner_join(
        RelExpr::scan_where(
            Part,
            vec![
                cmp(col(Part, "p_brand"), CmpOp::Eq, Scalar::Cat(brand)),
                cmp(col(Part, "p_container"), CmpOp::Eq, Scalar::Cat(container)),
            ],
        ),
        RelExpr::scan(Lineitem),
        (col(Part, "p_partkey"), col(Lineitem, "l_partkey")),
    );
    // Correlated per-part average-quantity subquery: an index probe of
    // lineitem per outer row under PostgreSQL 8.4's SubPlan execution.
    let subquery = agg(
        RelExpr::scan_where(
            Lineitem,
            vec![cmp(col(Lineitem, "l_partkey"), CmpOp::Eq, Scalar::Int(1))],
        ),
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Avg(col(Lineitem, "l_quantity"))],
            numeric_ops: 2,
            groups: GroupCount::One,
            having: None,
        },
    );
    let filtered = RelExpr::ScalarSubqueryFilter {
        input: Box::new(joined),
        subquery: Box::new(subquery),
        truth_sel: 0.1, // P(quantity < 0.2 × avg quantity ≈ 5.1) = 5/50
        correlated: true,
    };
    let aggregated = agg(
        filtered,
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 2,
            groups: GroupCount::One,
            having: None,
        },
    );
    QuerySpec {
        template: 17,
        params: vec![
            ("brand".into(), dicts::brand_name(brand)),
            ("container".into(), container.to_string()),
        ],
        root: aggregated,
    }
}

/// Q18 — large-volume customers: the HAVING sum(l_quantity) estimation-error
/// showcase (Section 5.3.3).
fn t18(rng: &mut StdRng) -> QuerySpec {
    let q = rng.gen_range(312..=315) as f64;
    let truth_fraction = p_order_quantity_sum_gt(q);
    let heavy_orders = agg(
        RelExpr::scan(Lineitem),
        AggregateSpec {
            group_by: vec![col(Lineitem, "l_orderkey")],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_quantity"))],
            numeric_ops: 1,
            groups: GroupCount::DistinctOf(col(Lineitem, "l_orderkey")),
            having: Some(Having {
                op: CmpOp::Gt,
                value: q,
                truth_fraction,
            }),
        },
    );
    let orders_semi = join_kind(
        JoinKind::Semi,
        RelExpr::scan(Orders),
        heavy_orders,
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
        truth_fraction,
        1.0,
    );
    let with_customer = RelExpr::inner_join(
        RelExpr::scan(Customer),
        orders_semi,
        (col(Customer, "c_custkey"), col(Orders, "o_custkey")),
    );
    let with_lines = RelExpr::inner_join(
        with_customer,
        RelExpr::scan(Lineitem),
        (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
    );
    let aggregated = agg(
        with_lines,
        AggregateSpec {
            group_by: vec![
                col(Customer, "c_custkey"),
                col(Orders, "o_orderkey"),
                col(Orders, "o_orderdate"),
                col(Orders, "o_totalprice"),
            ],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_quantity"))],
            numeric_ops: 2,
            groups: GroupCount::DistinctOf(col(Orders, "o_orderkey")),
            having: None,
        },
    );
    QuerySpec {
        template: 18,
        params: vec![("quantity".into(), q.to_string())],
        root: limit(sort(aggregated, 2), 100),
    }
}

/// Q19 — discounted revenue: disjunctive brand/container/quantity branches
/// (modeled as their union).
fn t19(rng: &mut StdRng) -> QuerySpec {
    let q1 = rng.gen_range(1..=10i64);
    let brands: Vec<Scalar> = (0..3)
        .map(|_| Scalar::Cat(rng.gen_range(0..dicts::N_BRANDS)))
        .collect();
    let containers: Vec<Scalar> = (0..12)
        .map(|_| Scalar::Cat(rng.gen_range(0..dicts::N_CONTAINERS)))
        .collect();
    let lineitem = RelExpr::scan_where(
        Lineitem,
        vec![
            Predicate::InSet {
                col: col(Lineitem, "l_shipmode"),
                values: vec![Scalar::Cat(0), Scalar::Cat(1)], // REG AIR / AIR
            },
            cmp(
                col(Lineitem, "l_shipinstruct"),
                CmpOp::Eq,
                Scalar::Cat(0), // DELIVER IN PERSON
            ),
            between(
                col(Lineitem, "l_quantity"),
                Scalar::Int(q1),
                Scalar::Int(q1 + 30),
            ),
        ],
    );
    let part = RelExpr::scan_where(
        Part,
        vec![
            Predicate::InSet {
                col: col(Part, "p_brand"),
                values: brands,
            },
            Predicate::InSet {
                col: col(Part, "p_container"),
                values: containers,
            },
            between(col(Part, "p_size"), Scalar::Int(1), Scalar::Int(15)),
        ],
    );
    // Branch-consistency between the three OR arms: roughly 1/3 of the
    // cross product of matching brands × quantity windows qualifies.
    let joined = join_kind(
        JoinKind::Inner,
        lineitem,
        part,
        (col(Lineitem, "l_partkey"), col(Part, "p_partkey")),
        1.0,
        1.0 / 3.0,
    );
    let aggregated = agg(
        joined,
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice"))],
            numeric_ops: 3,
            groups: GroupCount::One,
            having: None,
        },
    );
    QuerySpec {
        template: 19,
        params: vec![("quantity1".into(), q1.to_string())],
        root: aggregated,
    }
}

/// Q20 — potential part promotion: nested semi-joins with a correlated SUM
/// SubPlan.
fn t20(sf: f64, rng: &mut StdRng) -> QuerySpec {
    let color = rng.gen_range(0..dicts::N_COLORS);
    let nation = rng.gen_range(0..25u32);
    let year = rng.gen_range(1993..=1997);
    let (lo, hi) = year_window(year);
    // partsupp rows whose availqty beats half the part+supplier's shipped
    // quantity in the year (correlated subquery; truth ≈ 0.5).
    let subquery = agg(
        RelExpr::scan_where(
            Lineitem,
            vec![
                cmp(col(Lineitem, "l_partkey"), CmpOp::Eq, Scalar::Int(1)),
                between(col(Lineitem, "l_shipdate"), Scalar::Date(lo), Scalar::Date(hi)),
            ],
        ),
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Sum(col(Lineitem, "l_quantity"))],
            numeric_ops: 1,
            groups: GroupCount::One,
            having: None,
        },
    );
    let ps_filtered = RelExpr::ScalarSubqueryFilter {
        input: Box::new(RelExpr::scan(Partsupp)),
        subquery: Box::new(subquery),
        truth_sel: 0.5,
        correlated: true,
    };
    let ps_color = join_kind(
        JoinKind::Semi,
        ps_filtered,
        RelExpr::scan_where(
            Part,
            vec![Predicate::NameLike {
                col: col(Part, "p_name"),
                color,
            }],
        ),
        (col(Partsupp, "ps_partkey"), col(Part, "p_partkey")),
        p_name_contains_color(color),
        1.0,
    );
    // Fraction of suppliers with ≥ 1 qualifying partsupp row.
    let rows_per_supplier = 80.0 * sf.max(1e-6) * p_name_contains_color(color) * 0.5;
    let supplier_fraction = 1.0 - (-rows_per_supplier).exp();
    let suppliers = join_kind(
        JoinKind::Semi,
        RelExpr::scan(Supplier),
        ps_color,
        (col(Supplier, "s_suppkey"), col(Partsupp, "ps_suppkey")),
        supplier_fraction,
        1.0,
    );
    let with_nation = RelExpr::inner_join(
        suppliers,
        RelExpr::scan_where(
            Nation,
            vec![cmp(col(Nation, "n_name"), CmpOp::Eq, Scalar::Cat(nation))],
        ),
        (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
    );
    QuerySpec {
        template: 20,
        params: vec![
            ("color".into(), color.to_string()),
            ("nation".into(), dicts::NATIONS[nation as usize].into()),
            ("year".into(), year.to_string()),
        ],
        root: sort(with_nation, 1),
    }
}

/// Q21 — suppliers who kept orders waiting: triple self-join of LINEITEM
/// with EXISTS and NOT EXISTS arms.
fn t21(rng: &mut StdRng) -> QuerySpec {
    let nation = rng.gen_range(0..25u32);
    let p_late = p_commit_before_receipt();
    let sl = RelExpr::inner_join(
        RelExpr::scan(Supplier),
        RelExpr::scan_where(
            Lineitem,
            vec![Predicate::ColCmp {
                left: col(Lineitem, "l_commitdate"),
                op: CmpOp::Lt,
                right: col(Lineitem, "l_receiptdate"),
            }],
        ),
        (col(Supplier, "s_suppkey"), col(Lineitem, "l_suppkey")),
    );
    let slo = RelExpr::inner_join(
        sl,
        RelExpr::scan_where(
            Orders,
            vec![cmp(
                col(Orders, "o_orderstatus"),
                CmpOp::Eq,
                Scalar::Cat(0), // "F"
            )],
        ),
        (col(Lineitem, "l_orderkey"), col(Orders, "o_orderkey")),
    );
    let slon = RelExpr::inner_join(
        slo,
        RelExpr::scan_where(
            Nation,
            vec![cmp(col(Nation, "n_name"), CmpOp::Eq, Scalar::Cat(nation))],
        ),
        (col(Supplier, "s_nationkey"), col(Nation, "n_nationkey")),
    );
    // PostgreSQL 8.4 executes Q21's EXISTS / NOT EXISTS arms as per-row
    // SubPlans probing LINEITEM by order key — which is why the template
    // never finished within the hour at 10 GB. EXISTS (another line of the
    // same order from a different supplier): P(order has ≥ 2 lines) ≈ 6/7.
    let per_order_probe = || {
        agg(
            RelExpr::scan_where(
                Lineitem,
                vec![cmp(col(Lineitem, "l_orderkey"), CmpOp::Eq, Scalar::Int(1))],
            ),
            AggregateSpec {
                group_by: vec![],
                aggs: vec![AggFunc::Count],
                numeric_ops: 1,
                groups: GroupCount::One,
                having: None,
            },
        )
    };
    let exists_other = RelExpr::ScalarSubqueryFilter {
        input: Box::new(slon),
        subquery: Box::new(per_order_probe()),
        truth_sel: 6.0 / 7.0,
        correlated: true,
    };
    // NOT EXISTS another *late* line from a different supplier: keep if no
    // other line of the order is late, ≈ E[(1 − p_late)^(k−1)].
    let keep = {
        let (klo, khi) = LINES_PER_ORDER;
        let nk = (khi - klo + 1) as f64;
        (klo..=khi)
            .map(|k| (1.0 - p_late).powi(k - 1) / nk)
            .sum::<f64>()
    };
    let not_exists_late = RelExpr::ScalarSubqueryFilter {
        input: Box::new(exists_other),
        subquery: Box::new(per_order_probe()),
        truth_sel: keep,
        correlated: true,
    };
    let aggregated = agg(
        not_exists_late,
        AggregateSpec {
            group_by: vec![col(Supplier, "s_name")],
            aggs: vec![AggFunc::Count],
            numeric_ops: 1,
            groups: GroupCount::DistinctOf(col(Supplier, "s_suppkey")),
            having: None,
        },
    );
    QuerySpec {
        template: 21,
        params: vec![("nation".into(), dicts::NATIONS[nation as usize].into())],
        root: limit(sort(aggregated, 2), 100),
    }
}

/// Q22 — global sales opportunity: InitPlan average + anti-join on orders.
fn t22(rng: &mut StdRng) -> QuerySpec {
    // Seven distinct country codes, modeled on c_nationkey.
    let mut codes = Vec::new();
    while codes.len() < 7 {
        let c = rng.gen_range(1..=25i64);
        if !codes.contains(&c) {
            codes.push(c);
        }
    }
    let customers = RelExpr::scan_where(
        Customer,
        vec![Predicate::InSet {
            col: col(Customer, "c_nationkey"),
            values: codes.iter().map(|&c| Scalar::Int(c)).collect(),
        }],
    );
    let avg_bal = agg(
        RelExpr::scan_where(
            Customer,
            vec![cmp(
                col(Customer, "c_acctbal"),
                CmpOp::Gt,
                Scalar::Float(0.0),
            )],
        ),
        AggregateSpec {
            group_by: vec![],
            aggs: vec![AggFunc::Avg(col(Customer, "c_acctbal"))],
            numeric_ops: 1,
            groups: GroupCount::One,
            having: None,
        },
    );
    // P(bal > mean of positives ≈ 5000) on U[-999.99, 9999.99].
    let rich = RelExpr::ScalarSubqueryFilter {
        input: Box::new(customers),
        subquery: Box::new(avg_bal),
        truth_sel: (9999.99 - 5000.0) / 10999.98,
        correlated: false,
    };
    // Customers with no orders: every customer key is drawn uniformly for
    // ~10 orders each, so the no-order fraction is e^{-10}.
    let no_orders = join_kind(
        JoinKind::Anti,
        rich,
        RelExpr::scan(Orders),
        (col(Customer, "c_custkey"), col(Orders, "o_custkey")),
        (-10.0f64).exp(),
        1.0,
    );
    let aggregated = agg(
        no_orders,
        AggregateSpec {
            group_by: vec![col(Customer, "c_nationkey")],
            aggs: vec![AggFunc::Count, AggFunc::Sum(col(Customer, "c_acctbal"))],
            numeric_ops: 2,
            groups: GroupCount::Fixed(7.0),
            having: None,
        },
    );
    QuerySpec {
        template: 22,
        params: vec![(
            "codes".into(),
            codes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )],
        root: sort(aggregated, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn all_templates_instantiate() {
        let mut r = rng();
        for t in ALL_TEMPLATES {
            let q = instantiate(t, 1.0, &mut r);
            assert_eq!(q.template, t);
            assert!(!q.params.is_empty() || t == 1, "template {t} has params");
            assert!(!q.root.tables().is_empty(), "template {t} scans tables");
        }
    }

    #[test]
    fn subquery_templates_are_flagged() {
        let mut r = rng();
        let with_subquery: Vec<u8> = ALL_TEMPLATES
            .iter()
            .copied()
            .filter(|&t| instantiate(t, 1.0, &mut r).root.has_subquery())
            .collect();
        assert_eq!(with_subquery, vec![2, 11, 15, 17, 20, 21, 22]);
        // The paper's operator-level subset must be subquery-free.
        for t in FOURTEEN {
            let q = instantiate(t, 1.0, &mut rng());
            assert!(!q.root.has_subquery(), "template {t} in FOURTEEN");
        }
    }

    #[test]
    fn template_subsets_are_consistent() {
        for t in FOURTEEN {
            assert!(EIGHTEEN.contains(&t));
        }
        for t in TWELVE {
            assert!(FOURTEEN.contains(&t));
        }
        assert!(!FOURTEEN.contains(&2));
        assert!(!EIGHTEEN.contains(&17));
        assert!(!TWELVE.contains(&13) && !TWELVE.contains(&18));
    }

    #[test]
    fn t18_having_truth_is_tiny() {
        let p = p_order_quantity_sum_gt(314.0);
        // Only 7-line orders can top 314; the fraction is ~1e-5..1e-4 of
        // orders — matching the paper's 84 of 15M distinct keys story.
        assert!(p > 1e-7 && p < 1e-3, "p = {p}");
    }

    #[test]
    fn t18_having_truth_monotone_in_threshold() {
        assert!(p_order_quantity_sum_gt(312.0) >= p_order_quantity_sum_gt(315.0));
        assert!(p_order_quantity_sum_gt(0.0) > 0.99);
        assert_eq!(p_order_quantity_sum_gt(350.0), 0.0);
    }

    #[test]
    fn parameters_vary_across_instances() {
        let mut r = rng();
        let a = instantiate(6, 1.0, &mut r);
        let b = instantiate(6, 1.0, &mut r);
        let c = instantiate(6, 1.0, &mut r);
        let all_same = a.params == b.params && b.params == c.params;
        assert!(!all_same, "template 6 parameters never vary");
    }

    #[test]
    fn min_fraction_behaves() {
        // Sole member: always the minimum.
        assert!((min_fraction(1, 0.5) - 1.0).abs() < 1e-12);
        // With more surviving competitors the fraction drops.
        assert!(min_fraction(4, 0.9) < min_fraction(4, 0.1));
        let f = min_fraction(4, 0.2);
        assert!((f - 0.738).abs() < 0.01, "f = {f}");
    }

    #[test]
    fn t3_correction_shrinks_the_join() {
        let mut r = rng();
        let q = instantiate(3, 1.0, &mut r);
        // Find the orders ⋈ lineitem join and check its correction < 1.
        let mut found = false;
        q.root.visit(&mut |e| {
            if let RelExpr::Join {
                truth_correction, ..
            } = e
            {
                if *truth_correction < 0.999 {
                    found = true;
                }
            }
        });
        assert!(found, "template 3 must carry a date-correlation correction");
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let a = instantiate(3, 1.0, &mut StdRng::seed_from_u64(5));
        let b = instantiate(3, 1.0, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.params, b.params);
    }
}
