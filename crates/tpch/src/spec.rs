//! The logical query IR produced by template instantiation.
//!
//! A [`QuerySpec`] is a parameterized logical plan: base-table scans with
//! predicates, a join tree (with order fixed per template, mirroring the
//! plans PostgreSQL picks for the TPC-H queries), aggregation, sorting and
//! limits. The engine's planner lowers it to a physical plan; the engine's
//! truth model and estimator both read the predicates — the truth side uses
//! the exact generative selectivities (including the correlation overrides
//! templates compute), the estimator sees only the independent components,
//! exactly like a real optimizer.

use crate::schema::{ColRef, TableId};
use crate::types::{CmpOp, Scalar};
use serde::Serialize;

/// A scan/filter predicate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Predicate {
    /// `col op constant`.
    Cmp {
        /// Column.
        col: ColRef,
        /// Operator.
        op: CmpOp,
        /// Constant operand.
        value: Scalar,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column.
        col: ColRef,
        /// Lower bound.
        lo: Scalar,
        /// Upper bound.
        hi: Scalar,
    },
    /// `col IN (values...)`.
    InSet {
        /// Column.
        col: ColRef,
        /// Member values.
        values: Vec<Scalar>,
    },
    /// `left op right` between two columns of the same table
    /// (e.g. `l_commitdate < l_receiptdate`).
    ColCmp {
        /// Left column.
        left: ColRef,
        /// Operator.
        op: CmpOp,
        /// Right column.
        right: ColRef,
    },
    /// `p_name LIKE '%color%'` — name contains a specific color word.
    NameLike {
        /// The part-name column.
        col: ColRef,
        /// Color code searched for.
        color: u32,
    },
    /// `NOT LIKE` on an unmodeled text column (e.g. `o_comment`); carries
    /// the generative truth selectivity directly.
    TextNotLike {
        /// The text column.
        col: ColRef,
        /// Fraction of rows that survive the NOT LIKE.
        truth: f64,
    },
}

impl Predicate {
    /// The column the predicate constrains (left column for `ColCmp`).
    pub fn column(&self) -> ColRef {
        match self {
            Predicate::Cmp { col, .. }
            | Predicate::Between { col, .. }
            | Predicate::InSet { col, .. }
            | Predicate::NameLike { col, .. }
            | Predicate::TextNotLike { col, .. } => *col,
            Predicate::ColCmp { left, .. } => *left,
        }
    }
}

/// Join kinds used by the templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum JoinKind {
    /// Plain inner equi-join.
    Inner,
    /// Left outer join (template 13).
    LeftOuter,
    /// EXISTS — keep left rows with a match.
    Semi,
    /// NOT EXISTS — keep left rows without a match.
    Anti,
}

/// Aggregate functions (for the executor and for display; operator timing
/// is driven by `numeric_ops`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum AggFunc {
    /// COUNT(*).
    Count,
    /// SUM(col).
    Sum(ColRef),
    /// AVG(col).
    Avg(ColRef),
    /// MIN(col).
    Min(ColRef),
    /// MAX(col).
    Max(ColRef),
}

/// How the true number of groups of an aggregation is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum GroupCount {
    /// A known constant number of groups (e.g. template 1's flag × status).
    Fixed(f64),
    /// Grouping by a column: the engine applies the Cardenas formula with
    /// the column's true distinct count.
    DistinctOf(ColRef),
    /// One output row (ungrouped aggregate).
    One,
}

/// A HAVING clause on an aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Having {
    /// Operator (e.g. `>` in `having sum(l_quantity) > 314`).
    pub op: CmpOp,
    /// Threshold value.
    pub value: f64,
    /// True fraction of groups that survive, computed by the template from
    /// the generative model. Optimizers have no such knowledge and fall
    /// back to a default selectivity — that gap is the template-18 story.
    pub truth_fraction: f64,
}

/// Aggregation node description.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AggregateSpec {
    /// Grouping columns (empty for scalar aggregates).
    pub group_by: Vec<ColRef>,
    /// Aggregate expressions computed per group.
    pub aggs: Vec<AggFunc>,
    /// Arithmetic operations evaluated per input tuple (drives CPU cost in
    /// the simulator; e.g. template 1's numeric expressions).
    pub numeric_ops: u32,
    /// True group count derivation.
    pub groups: GroupCount,
    /// Optional HAVING filter.
    pub having: Option<Having>,
}

/// A logical relational expression. Join order is part of the template
/// definition (mirroring the plans PostgreSQL chooses); the engine only
/// makes *physical* choices.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RelExpr {
    /// Base-table scan with conjunctive filters.
    Scan {
        /// Scanned table.
        table: TableId,
        /// Conjunctive predicates.
        filters: Vec<Predicate>,
        /// When the conjunction is correlated, templates supply the exact
        /// joint selectivity here; `None` means the filters are independent
        /// and truth equals the product of per-predicate truths.
        truth_sel_override: Option<f64>,
    },
    /// Equi-join of two sub-expressions.
    Join {
        /// Join kind.
        kind: JoinKind,
        /// Equi-join columns (left side, right side).
        on: (ColRef, ColRef),
        /// Left input.
        left: Box<RelExpr>,
        /// Right input.
        right: Box<RelExpr>,
        /// Truth correction. For `Inner`/`LeftOuter`: a multiplier on the
        /// uniform join-cardinality formula (cross-table correlations).
        /// For `Semi`/`Anti`: the exact fraction of left rows retained.
        truth_correction: f64,
        /// Additional non-equi join predicate selectivity known to *both*
        /// truth and estimator (e.g. template 5's `c_nationkey =
        /// s_nationkey`); 1.0 when absent.
        extra_filter_sel: f64,
    },
    /// Aggregation.
    Aggregate {
        /// Input.
        input: Box<RelExpr>,
        /// Aggregation description.
        spec: AggregateSpec,
    },
    /// Sort on `keys` leading columns of the input.
    Sort {
        /// Input.
        input: Box<RelExpr>,
        /// Number of sort keys (ordering columns).
        keys: u32,
    },
    /// LIMIT.
    Limit {
        /// Input.
        input: Box<RelExpr>,
        /// Row budget.
        count: u64,
    },
    /// Filter the input rows by comparison against a scalar subquery
    /// (PostgreSQL's InitPlan / SubPlan structures — templates 2, 11, 15,
    /// 17, 20, 22). `correlated` subqueries re-execute per input row.
    ScalarSubqueryFilter {
        /// Filtered input.
        input: Box<RelExpr>,
        /// The subquery computing the scalar.
        subquery: Box<RelExpr>,
        /// True fraction of input rows surviving the comparison.
        truth_sel: f64,
        /// Whether the subquery is correlated (re-evaluated per input row,
        /// like a SubPlan) or evaluated once (InitPlan).
        correlated: bool,
    },
}

impl RelExpr {
    /// Convenience constructor for an unfiltered scan.
    pub fn scan(table: TableId) -> RelExpr {
        RelExpr::Scan {
            table,
            filters: Vec::new(),
            truth_sel_override: None,
        }
    }

    /// Convenience constructor for a filtered scan with independent filters.
    pub fn scan_where(table: TableId, filters: Vec<Predicate>) -> RelExpr {
        RelExpr::Scan {
            table,
            filters,
            truth_sel_override: None,
        }
    }

    /// Convenience constructor for an inner join with no corrections.
    pub fn inner_join(left: RelExpr, right: RelExpr, on: (ColRef, ColRef)) -> RelExpr {
        RelExpr::Join {
            kind: JoinKind::Inner,
            on,
            left: Box::new(left),
            right: Box::new(right),
            truth_correction: 1.0,
            extra_filter_sel: 1.0,
        }
    }

    /// Tables referenced anywhere in the expression (with repeats for
    /// self-joins), in scan order.
    pub fn tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let RelExpr::Scan { table, .. } = e {
                out.push(*table);
            }
        });
        out
    }

    /// Whether the expression contains a scalar-subquery filter
    /// (a PostgreSQL InitPlan/SubPlan-style structure). The paper's
    /// operator-level models cannot handle such plans (Section 5.3's
    /// footnote); ours inherit the restriction for fidelity.
    pub fn has_subquery(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, RelExpr::ScalarSubqueryFilter { .. }) {
                found = true;
            }
        });
        found
    }

    /// Pre-order traversal.
    pub fn visit<F: FnMut(&RelExpr)>(&self, f: &mut F) {
        f(self);
        match self {
            RelExpr::Scan { .. } => {}
            RelExpr::Join { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            RelExpr::Aggregate { input, .. }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. } => input.visit(f),
            RelExpr::ScalarSubqueryFilter {
                input, subquery, ..
            } => {
                input.visit(f);
                subquery.visit(f);
            }
        }
    }
}

/// A fully-instantiated query: a template with concrete parameter values.
#[derive(Debug, Clone, Serialize)]
pub struct QuerySpec {
    /// TPC-H template number (1..=22).
    pub template: u8,
    /// Human-readable parameter bindings for logging.
    pub params: Vec<(String, String)>,
    /// The logical plan.
    pub root: RelExpr,
}

impl QuerySpec {
    /// Template number accessor (1..=22).
    pub fn template_id(&self) -> u8 {
        self.template
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::col;

    fn simple_join() -> RelExpr {
        RelExpr::inner_join(
            RelExpr::scan(TableId::Orders),
            RelExpr::scan(TableId::Lineitem),
            (
                col(TableId::Orders, "o_orderkey"),
                col(TableId::Lineitem, "l_orderkey"),
            ),
        )
    }

    #[test]
    fn tables_lists_scans_in_order() {
        let e = simple_join();
        assert_eq!(e.tables(), vec![TableId::Orders, TableId::Lineitem]);
    }

    #[test]
    fn has_subquery_detects_nested_initplans() {
        let plain = simple_join();
        assert!(!plain.has_subquery());
        let with_sub = RelExpr::ScalarSubqueryFilter {
            input: Box::new(simple_join()),
            subquery: Box::new(RelExpr::scan(TableId::Part)),
            truth_sel: 0.5,
            correlated: false,
        };
        assert!(with_sub.has_subquery());
        let wrapped = RelExpr::Sort {
            input: Box::new(with_sub),
            keys: 1,
        };
        assert!(wrapped.has_subquery());
    }

    #[test]
    fn predicate_column_accessor() {
        let p = Predicate::Cmp {
            col: col(TableId::Lineitem, "l_quantity"),
            op: CmpOp::Lt,
            value: Scalar::Int(24),
        };
        assert_eq!(p.column().column, "l_quantity");
        let c = Predicate::ColCmp {
            left: col(TableId::Lineitem, "l_commitdate"),
            op: CmpOp::Lt,
            right: col(TableId::Lineitem, "l_receiptdate"),
        };
        assert_eq!(c.column().column, "l_commitdate");
    }

    #[test]
    fn visit_reaches_every_node() {
        let e = RelExpr::Limit {
            input: Box::new(RelExpr::Sort {
                input: Box::new(RelExpr::Aggregate {
                    input: Box::new(simple_join()),
                    spec: AggregateSpec {
                        group_by: vec![],
                        aggs: vec![AggFunc::Count],
                        numeric_ops: 1,
                        groups: GroupCount::One,
                        having: None,
                    },
                }),
                keys: 1,
            }),
            count: 10,
        };
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6); // limit, sort, agg, join, 2 scans
    }
}
