//! Categorical dictionaries from the TPC-H specification.
//!
//! Categorical columns are generated and compared as small integer codes;
//! these tables map codes back to the spec's string values for display and
//! provide the code spaces (cardinalities) used by selectivity math.

/// Market segments (`c_mktsegment`).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities (`o_orderpriority`).
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes (`l_shipmode`).
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Ship instructions (`l_shipinstruct`).
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Return flags (`l_returnflag`): R, A, N.
pub const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];

/// Line statuses (`l_linestatus`).
pub const LINE_STATUSES: [&str; 2] = ["O", "F"];

/// Order statuses (`o_orderstatus`).
pub const ORDER_STATUSES: [&str; 3] = ["F", "O", "P"];

/// The 25 nations, in nation-key order.
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "RUSSIA",
    "SAUDI ARABIA",
    "UNITED KINGDOM",
    "UNITED STATES",
    "VIETNAM",
];

/// Region key of each nation, aligned with [`NATIONS`]
/// (0 = AFRICA, 1 = AMERICA, 2 = ASIA, 3 = EUROPE, 4 = MIDDLE EAST).
pub const NATION_REGION: [u32; 25] = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 3, 4, 3, 1, 2,
];

/// The 5 regions, in region-key order.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Number of distinct part brands (`Brand#MN`, M and N in 1..=5).
pub const N_BRANDS: u32 = 25;

/// Number of distinct part types (6 syllable-1 × 5 syllable-2 × 5 syllable-3).
pub const N_TYPES: u32 = 150;

/// Number of distinct containers (5 × 8 combinations).
pub const N_CONTAINERS: u32 = 40;

/// Number of colors in the `p_name` vocabulary; each part name is built
/// from 5 of these, which drives `p_name LIKE '%color%'` selectivity.
pub const N_COLORS: u32 = 92;

/// Words per part name drawn from the color vocabulary.
pub const NAME_WORDS: u32 = 5;

/// Renders a brand code (0..25) as the spec's `Brand#MN` string.
pub fn brand_name(code: u32) -> String {
    format!("Brand#{}{}", code / 5 + 1, code % 5 + 1)
}

/// Type syllables for rendering `p_type` codes.
const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Renders a type code (0..150) as `S1 S2 S3`.
pub fn type_name(code: u32) -> String {
    let s1 = TYPE_S1[(code / 25) as usize % 6];
    let s2 = TYPE_S2[(code / 5 % 5) as usize];
    let s3 = TYPE_S3[(code % 5) as usize];
    format!("{s1} {s2} {s3}")
}

/// The trailing syllable of a type code (used by template 2's `%BRASS`).
pub fn type_suffix(code: u32) -> &'static str {
    TYPE_S3[(code % 5) as usize]
}

/// The leading syllable of a type code (used by template 14's `PROMO%`).
pub fn type_prefix(code: u32) -> &'static str {
    TYPE_S1[(code / 25) as usize % 6]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nation_region_mapping_is_balanced() {
        // Spec: each region hosts exactly five nations.
        for region in 0..5u32 {
            let n = NATION_REGION.iter().filter(|&&r| r == region).count();
            assert_eq!(n, 5, "region {region} has {n} nations");
        }
    }

    #[test]
    fn brand_codes_render_per_spec() {
        assert_eq!(brand_name(0), "Brand#11");
        assert_eq!(brand_name(24), "Brand#55");
        let all: std::collections::HashSet<String> = (0..N_BRANDS).map(brand_name).collect();
        assert_eq!(all.len(), 25);
    }

    #[test]
    fn type_codes_cover_150_distinct_names() {
        let all: std::collections::HashSet<String> = (0..N_TYPES).map(type_name).collect();
        assert_eq!(all.len(), 150);
        assert_eq!(type_name(0), "STANDARD ANODIZED TIN");
    }

    #[test]
    fn type_suffix_partitions_types() {
        // Exactly 30 of the 150 types end in each syllable-3 value.
        let brass = (0..N_TYPES).filter(|&c| type_suffix(c) == "BRASS").count();
        assert_eq!(brass, 30);
        let promo = (0..N_TYPES).filter(|&c| type_prefix(c) == "PROMO").count();
        assert_eq!(promo, 25);
    }

    #[test]
    fn dictionary_sizes_match_constants() {
        assert_eq!(SEGMENTS.len(), 5);
        assert_eq!(SHIP_MODES.len(), 7);
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        assert_eq!(NATION_REGION.len(), NATIONS.len());
    }
}
