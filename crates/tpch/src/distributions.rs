//! Generative column distributions and exact selectivity math.
//!
//! Every column of the TPC-H schema is described by the distribution its
//! values are drawn from in the data generator. Because both the generator
//! and this module are built from the same descriptions, *true*
//! selectivities of predicates can be computed in closed form (and verified
//! against generated data at small scale factors — see the integration
//! tests).
//!
//! The date columns of LINEITEM are *derived* from `o_orderdate` through
//! uniform lags, which creates exactly the cross-column and cross-table
//! correlations that trip up an optimizer assuming attribute independence.
//! The `joint` functions at the bottom compute exact probabilities for the
//! correlated predicate combinations used by the query templates.

use crate::dicts;
use crate::schema::{ColRef, TableId};
use crate::types::{CmpOp, END_DATE};

/// Number of distinct `o_orderdate` values: STARTDATE .. ENDDATE − 151 days.
pub const ORDERDATE_VALUES: i32 = END_DATE - 151 + 1;

/// Maximum ship lag (days after the order date).
pub const SHIP_LAG_MAX: i32 = 121;
/// Commit lag range (days after the order date).
pub const COMMIT_LAG: (i32, i32) = (30, 90);
/// Receipt lag range (days after the ship date).
pub const RECEIPT_LAG: (i32, i32) = (1, 30);
/// Lines per order range.
pub const LINES_PER_ORDER: (i32, i32) = (1, 7);

/// Generative description of a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Dense serial key `1..=row_count` (primary keys).
    SerialKey,
    /// Uniform over the primary-key domain of another table (foreign keys).
    ForeignKey(TableId),
    /// Uniform integer over an inclusive range.
    UniformInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Uniform float over a half-open range.
    UniformFloat {
        /// Lower bound.
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Uniform over categorical codes `0..n`.
    Categorical {
        /// Number of categories.
        n: u32,
    },
    /// `o_orderdate`: uniform over day numbers `0 ..= ENDDATE-151`.
    OrderDate,
    /// `l_shipdate = o_orderdate + U[1, 121]`.
    ShipDate,
    /// `l_commitdate = o_orderdate + U[30, 90]`.
    CommitDate,
    /// `l_receiptdate = l_shipdate + U[1, 30]`.
    ReceiptDate,
    /// Text column (comments, names) — no predicate math beyond LIKE.
    Text,
}

/// Returns the generative distribution of a column.
///
/// # Panics
/// Panics on a column this substrate does not model.
pub fn column_distribution(c: ColRef) -> Distribution {
    use Distribution as D;
    use TableId as T;
    match (c.table, c.column) {
        (T::Region, "r_regionkey") => D::SerialKey,
        (T::Region, "r_name") => D::Categorical { n: 5 },
        (T::Nation, "n_nationkey") => D::SerialKey,
        (T::Nation, "n_name") => D::Categorical { n: 25 },
        (T::Nation, "n_regionkey") => D::ForeignKey(T::Region),
        (T::Supplier, "s_suppkey") => D::SerialKey,
        (T::Supplier, "s_nationkey") => D::ForeignKey(T::Nation),
        (T::Supplier, "s_acctbal") => D::UniformFloat {
            lo: -999.99,
            hi: 9999.99,
        },
        (T::Supplier, "s_name" | "s_phone" | "s_comment") => D::Text,
        (T::Customer, "c_custkey") => D::SerialKey,
        (T::Customer, "c_nationkey") => D::ForeignKey(T::Nation),
        (T::Customer, "c_acctbal") => D::UniformFloat {
            lo: -999.99,
            hi: 9999.99,
        },
        (T::Customer, "c_mktsegment") => D::Categorical { n: 5 },
        (T::Customer, "c_name" | "c_phone" | "c_comment") => D::Text,
        (T::Part, "p_partkey") => D::SerialKey,
        (T::Part, "p_name") => D::Text,
        (T::Part, "p_mfgr") => D::Categorical { n: 5 },
        (T::Part, "p_brand") => D::Categorical {
            n: dicts::N_BRANDS,
        },
        (T::Part, "p_type") => D::Categorical { n: dicts::N_TYPES },
        (T::Part, "p_size") => D::UniformInt { lo: 1, hi: 50 },
        (T::Part, "p_container") => D::Categorical {
            n: dicts::N_CONTAINERS,
        },
        (T::Part, "p_retailprice") => D::UniformFloat {
            lo: 900.0,
            hi: 2100.0,
        },
        (T::Partsupp, "ps_partkey") => D::ForeignKey(T::Part),
        (T::Partsupp, "ps_suppkey") => D::ForeignKey(T::Supplier),
        (T::Partsupp, "ps_availqty") => D::UniformInt { lo: 1, hi: 9999 },
        (T::Partsupp, "ps_supplycost") => D::UniformFloat {
            lo: 1.0,
            hi: 1000.0,
        },
        (T::Orders, "o_orderkey") => D::SerialKey,
        (T::Orders, "o_custkey") => D::ForeignKey(T::Customer),
        (T::Orders, "o_orderstatus") => D::Categorical { n: 3 },
        (T::Orders, "o_totalprice") => D::UniformFloat {
            lo: 850.0,
            hi: 550_000.0,
        },
        (T::Orders, "o_orderdate") => D::OrderDate,
        (T::Orders, "o_orderpriority") => D::Categorical { n: 5 },
        (T::Orders, "o_shippriority") => D::UniformInt { lo: 0, hi: 0 },
        (T::Orders, "o_clerk" | "o_comment") => D::Text,
        (T::Lineitem, "l_orderkey") => D::ForeignKey(T::Orders),
        (T::Lineitem, "l_partkey") => D::ForeignKey(T::Part),
        (T::Lineitem, "l_suppkey") => D::ForeignKey(T::Supplier),
        (T::Lineitem, "l_linenumber") => D::UniformInt { lo: 1, hi: 7 },
        (T::Lineitem, "l_quantity") => D::UniformInt { lo: 1, hi: 50 },
        (T::Lineitem, "l_extendedprice") => D::UniformFloat {
            lo: 900.0,
            hi: 105_000.0,
        },
        (T::Lineitem, "l_discount") => D::UniformInt { lo: 0, hi: 10 },
        (T::Lineitem, "l_tax") => D::UniformInt { lo: 0, hi: 8 },
        (T::Lineitem, "l_returnflag") => D::Categorical { n: 3 },
        (T::Lineitem, "l_linestatus") => D::Categorical { n: 2 },
        (T::Lineitem, "l_shipdate") => D::ShipDate,
        (T::Lineitem, "l_commitdate") => D::CommitDate,
        (T::Lineitem, "l_receiptdate") => D::ReceiptDate,
        (T::Lineitem, "l_shipinstruct") => D::Categorical { n: 4 },
        (T::Lineitem, "l_shipmode") => D::Categorical { n: 7 },
        (T::Lineitem, "l_comment") => D::Text,
        _ => panic!("unmodeled column {c}"),
    }
}

/// Number of distinct values of a column at the given scale factor.
pub fn ndistinct(c: ColRef, sf: f64) -> f64 {
    match column_distribution(c) {
        Distribution::SerialKey => c.table.row_count(sf) as f64,
        Distribution::ForeignKey(target) => {
            // Distinct referenced keys, capped by the referencing row count.
            (target.row_count(sf) as f64).min(c.table.row_count(sf) as f64)
        }
        Distribution::UniformInt { lo, hi } => (hi - lo + 1) as f64,
        Distribution::UniformFloat { .. } => (c.table.row_count(sf) as f64).min(1e7),
        Distribution::Categorical { n } => n as f64,
        Distribution::OrderDate => ORDERDATE_VALUES as f64,
        Distribution::ShipDate => (ORDERDATE_VALUES + SHIP_LAG_MAX) as f64,
        Distribution::CommitDate => (ORDERDATE_VALUES + COMMIT_LAG.1 - COMMIT_LAG.0) as f64,
        Distribution::ReceiptDate => {
            (ORDERDATE_VALUES + SHIP_LAG_MAX + RECEIPT_LAG.1 - RECEIPT_LAG.0) as f64
        }
        Distribution::Text => c.table.row_count(sf) as f64,
    }
}

/// Numeric (min, max) of a column's domain at the given scale factor.
pub fn value_range(c: ColRef, sf: f64) -> (f64, f64) {
    match column_distribution(c) {
        Distribution::SerialKey => (1.0, c.table.row_count(sf) as f64),
        Distribution::ForeignKey(target) => (1.0, target.row_count(sf) as f64),
        Distribution::UniformInt { lo, hi } => (lo as f64, hi as f64),
        Distribution::UniformFloat { lo, hi } => (lo, hi),
        Distribution::Categorical { n } => (0.0, (n - 1) as f64),
        Distribution::OrderDate => (0.0, (ORDERDATE_VALUES - 1) as f64),
        Distribution::ShipDate => (1.0, (ORDERDATE_VALUES - 1 + SHIP_LAG_MAX) as f64),
        Distribution::CommitDate => (
            COMMIT_LAG.0 as f64,
            (ORDERDATE_VALUES - 1 + COMMIT_LAG.1) as f64,
        ),
        Distribution::ReceiptDate => (
            2.0,
            (ORDERDATE_VALUES - 1 + SHIP_LAG_MAX + RECEIPT_LAG.1) as f64,
        ),
        Distribution::Text => (0.0, 0.0),
    }
}

/// Exact P(`col op value`) under the generative model.
///
/// For derived date columns this averages the uniform base-date probability
/// over the (discrete, uniform) lag distributions, which is exact.
pub fn selectivity(c: ColRef, op: CmpOp, value: f64, sf: f64) -> f64 {
    let dist = column_distribution(c);
    match dist {
        Distribution::SerialKey | Distribution::ForeignKey(_) => {
            let (lo, hi) = value_range(c, sf);
            uniform_int_sel(lo as i64, hi as i64, op, value)
        }
        Distribution::UniformInt { lo, hi } => uniform_int_sel(lo, hi, op, value),
        Distribution::UniformFloat { lo, hi } => uniform_float_sel(lo, hi, op, value),
        Distribution::Categorical { n } => uniform_int_sel(0, (n - 1) as i64, op, value),
        Distribution::OrderDate => uniform_int_sel(0, (ORDERDATE_VALUES - 1) as i64, op, value),
        Distribution::ShipDate => lagged_date_sel(op, value, &ship_lags()),
        Distribution::CommitDate => lagged_date_sel(op, value, &commit_lags()),
        Distribution::ReceiptDate => lagged_date_sel(op, value, &receipt_lags()),
        Distribution::Text => 0.0,
    }
}

/// P(`lo <= col <= hi_v`) for range predicates (BETWEEN).
pub fn between_selectivity(c: ColRef, lo_v: f64, hi_v: f64, sf: f64) -> f64 {
    let le_hi = selectivity(c, CmpOp::Le, hi_v, sf);
    let lt_lo = selectivity(c, CmpOp::Lt, lo_v, sf);
    (le_hi - lt_lo).max(0.0)
}

fn uniform_int_sel(lo: i64, hi: i64, op: CmpOp, value: f64) -> f64 {
    let n = (hi - lo + 1) as f64;
    if n <= 0.0 {
        return 0.0;
    }
    // Count of integers in [lo, hi] strictly below `value`.
    let below = ((value.ceil() as i64 - lo).clamp(0, hi - lo + 1)) as f64;
    let eq = if value.fract() == 0.0 && (lo..=hi).contains(&(value as i64)) {
        1.0
    } else {
        0.0
    };
    match op {
        CmpOp::Eq => eq / n,
        CmpOp::Ne => 1.0 - eq / n,
        CmpOp::Lt => below / n,
        CmpOp::Le => (below + eq) / n,
        CmpOp::Gt => 1.0 - (below + eq) / n,
        CmpOp::Ge => 1.0 - below / n,
    }
}

fn uniform_float_sel(lo: f64, hi: f64, op: CmpOp, value: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 {
        return 0.0;
    }
    let cdf = ((value - lo) / span).clamp(0.0, 1.0);
    match op {
        CmpOp::Eq => 0.0,
        CmpOp::Ne => 1.0,
        CmpOp::Lt | CmpOp::Le => cdf,
        CmpOp::Gt | CmpOp::Ge => 1.0 - cdf,
    }
}

/// Lag distributions as (offset, probability) lists.
fn ship_lags() -> Vec<(i32, f64)> {
    let p = 1.0 / SHIP_LAG_MAX as f64;
    (1..=SHIP_LAG_MAX).map(|d| (d, p)).collect()
}

fn commit_lags() -> Vec<(i32, f64)> {
    let n = (COMMIT_LAG.1 - COMMIT_LAG.0 + 1) as f64;
    (COMMIT_LAG.0..=COMMIT_LAG.1).map(|d| (d, 1.0 / n)).collect()
}

fn receipt_lags() -> Vec<(i32, f64)> {
    // receipt = orderdate + ship_lag + receipt_lag: convolve the two lags.
    let mut out = Vec::new();
    let ps = 1.0 / SHIP_LAG_MAX as f64;
    let pr = 1.0 / (RECEIPT_LAG.1 - RECEIPT_LAG.0 + 1) as f64;
    let mut acc = std::collections::BTreeMap::new();
    for s in 1..=SHIP_LAG_MAX {
        for r in RECEIPT_LAG.0..=RECEIPT_LAG.1 {
            *acc.entry(s + r).or_insert(0.0) += ps * pr;
        }
    }
    for (d, p) in acc {
        out.push((d, p));
    }
    out
}

/// P(`orderdate + lag op value`) averaged over the lag distribution.
fn lagged_date_sel(op: CmpOp, value: f64, lags: &[(i32, f64)]) -> f64 {
    // The clamp absorbs float accumulation drift over the ~121-term sum.
    lags.iter()
        .map(|&(d, p)| p * uniform_int_sel(0, (ORDERDATE_VALUES - 1) as i64, op, value - d as f64))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// Popularity weight of color `c` in the part-name vocabulary.
///
/// Part names draw their words from a mildly skewed (Zipf-like)
/// distribution rather than uniformly; this is what makes `p_name LIKE
/// '%color%'` selectivity — and with it template 9's runtime — vary
/// strongly with the chosen color, as the paper's 10 GB experiments
/// required (only 17 of 55 template-9 instances finished within an hour).
pub fn color_weight(color: u32) -> f64 {
    assert!(color < dicts::N_COLORS, "color {color} out of range");
    let raw = |c: u32| 1.0 / (1.0 + c as f64).powf(1.1);
    let total: f64 = (0..dicts::N_COLORS).map(raw).sum();
    raw(color) / total
}

/// Probability that a part name (5 weighted draws from the 92-color
/// vocabulary) contains the given color — truth for
/// `p_name LIKE '%color%'`.
pub fn p_name_contains_color(color: u32) -> f64 {
    let w = color_weight(color);
    1.0 - (1.0 - w).powi(dicts::NAME_WORDS as i32)
}

/// Average name-contains-color probability across all colors (weighted by
/// nothing — uniform over query parameters).
pub fn p_name_contains_color_mean() -> f64 {
    (0..dicts::N_COLORS)
        .map(p_name_contains_color)
        .sum::<f64>()
        / dicts::N_COLORS as f64
}

// ---------------------------------------------------------------------------
// Joint probabilities for correlated predicate combinations.
// ---------------------------------------------------------------------------

/// P(`o_orderdate < cut` ∧ `l_shipdate > cut`) for a lineitem joined to its
/// order (template 3's cross-table date correlation).
pub fn joint_order_before_ship_after(cut: i32) -> f64 {
    let n = ORDERDATE_VALUES as f64;
    let mut total = 0.0;
    for (d, p) in ship_lags() {
        // o < cut and o > cut - d  =>  o in (cut-d, cut) intersect domain.
        let lo = (cut - d + 1).max(0);
        let hi = (cut - 1).min(ORDERDATE_VALUES - 1);
        if hi >= lo {
            total += p * ((hi - lo + 1) as f64 / n);
        }
    }
    total
}

/// P(`l_commitdate < l_receiptdate`) for a single line item (templates 4
/// and 21's "late delivery" predicate). Under the generative model this is
/// P(commit_lag < ship_lag + receipt_lag).
pub fn p_commit_before_receipt() -> f64 {
    let mut total = 0.0;
    let ps = 1.0 / SHIP_LAG_MAX as f64;
    let pr = 1.0 / (RECEIPT_LAG.1 - RECEIPT_LAG.0 + 1) as f64;
    let pc = 1.0 / (COMMIT_LAG.1 - COMMIT_LAG.0 + 1) as f64;
    for s in 1..=SHIP_LAG_MAX {
        for r in RECEIPT_LAG.0..=RECEIPT_LAG.1 {
            for c in COMMIT_LAG.0..=COMMIT_LAG.1 {
                if c < s + r {
                    total += ps * pr * pc;
                }
            }
        }
    }
    total
}

/// P(template 12's predicate chain): `l_shipdate < l_commitdate` ∧
/// `l_commitdate < l_receiptdate` ∧ `l_receiptdate ∈ [year_start,
/// year_start + 365)`.
pub fn joint_t12_chain(year_start: i32) -> f64 {
    let ps = 1.0 / SHIP_LAG_MAX as f64;
    let pr = 1.0 / (RECEIPT_LAG.1 - RECEIPT_LAG.0 + 1) as f64;
    let pc = 1.0 / (COMMIT_LAG.1 - COMMIT_LAG.0 + 1) as f64;
    let n = ORDERDATE_VALUES as f64;
    let mut total = 0.0;
    for s in 1..=SHIP_LAG_MAX {
        for r in RECEIPT_LAG.0..=RECEIPT_LAG.1 {
            for c in COMMIT_LAG.0..=COMMIT_LAG.1 {
                // ship < commit < receipt in lag space.
                if s < c && c < s + r {
                    // receipt = o + s + r in [year_start, year_start+365).
                    let lo = (year_start - s - r).max(0);
                    let hi = (year_start + 364 - s - r).min(ORDERDATE_VALUES - 1);
                    if hi >= lo {
                        total += ps * pr * pc * ((hi - lo + 1) as f64 / n);
                    }
                }
            }
        }
    }
    total
}

/// Fraction of orders having ≥ 1 line with `l_commitdate < l_receiptdate`
/// (template 4's EXISTS). Averages `1 − (1 − p)^k` over the uniform
/// lines-per-order count `k`.
pub fn p_order_has_late_line() -> f64 {
    let p = p_commit_before_receipt();
    let (lo, hi) = LINES_PER_ORDER;
    let nk = (hi - lo + 1) as f64;
    (lo..=hi)
        .map(|k| (1.0 - (1.0 - p).powi(k)) / nk)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::col;
    use crate::types::date;

    #[test]
    fn uniform_int_selectivities() {
        let q = col(TableId::Lineitem, "l_quantity"); // U{1..50}
        assert!((selectivity(q, CmpOp::Eq, 10.0, 1.0) - 0.02).abs() < 1e-12);
        assert!((selectivity(q, CmpOp::Lt, 24.0, 1.0) - 23.0 / 50.0).abs() < 1e-12);
        assert!((selectivity(q, CmpOp::Le, 24.0, 1.0) - 24.0 / 50.0).abs() < 1e-12);
        assert!((selectivity(q, CmpOp::Gt, 50.0, 1.0)).abs() < 1e-12);
        assert!((selectivity(q, CmpOp::Ge, 1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_selectivity_is_one_over_n() {
        let seg = col(TableId::Customer, "c_mktsegment");
        assert!((selectivity(seg, CmpOp::Eq, 2.0, 1.0) - 0.2).abs() < 1e-12);
        let mode = col(TableId::Lineitem, "l_shipmode");
        assert!((selectivity(mode, CmpOp::Eq, 0.0, 1.0) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn orderdate_range_selectivity() {
        let od = col(TableId::Orders, "o_orderdate");
        // A 365-day window out of 2406 possible order dates.
        let s = between_selectivity(od, date(1994, 1, 1) as f64, (date(1995, 1, 1) - 1) as f64, 1.0);
        assert!((s - 365.0 / ORDERDATE_VALUES as f64).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn shipdate_marginal_is_near_uniform_in_bulk() {
        let sd = col(TableId::Lineitem, "l_shipdate");
        // Far away from the calendar edges, a one-year window covers about
        // 365 / 2406 of the mass.
        let s = between_selectivity(sd, date(1995, 1, 1) as f64, (date(1996, 1, 1) - 1) as f64, 1.0);
        let expected = 365.0 / ORDERDATE_VALUES as f64;
        assert!((s - expected).abs() < 0.01, "s = {s}, expected ≈ {expected}");
        // Selectivities integrate to 1 over the full domain.
        let all = between_selectivity(sd, 0.0, 4000.0, 1.0);
        assert!((all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn joint_order_ship_is_less_than_independence() {
        let cut = date(1995, 3, 15);
        let joint = joint_order_before_ship_after(cut);
        let od = col(TableId::Orders, "o_orderdate");
        let sd = col(TableId::Lineitem, "l_shipdate");
        let indep = selectivity(od, CmpOp::Lt, cut as f64, 1.0)
            * selectivity(sd, CmpOp::Gt, cut as f64, 1.0);
        // The events are strongly negatively correlated: an order placed
        // before the cut usually ships before it too.
        assert!(joint > 0.0);
        assert!(joint < indep, "joint {joint} should be < indep {indep}");
        assert!(joint < 0.05, "only a thin sliver straddles the cut");
    }

    #[test]
    fn commit_before_receipt_probability_is_moderate() {
        let p = p_commit_before_receipt();
        // commit lag mean 60; ship+receipt mean ~76.5 — most lines are late.
        assert!(p > 0.5 && p < 0.85, "p = {p}");
    }

    #[test]
    fn t12_chain_probability_is_sane() {
        let y = date(1994, 1, 1);
        let joint = joint_t12_chain(y);
        assert!(joint > 0.0 && joint < 0.2, "joint = {joint}");
        // P(ship < commit < receipt) alone — i.e. the chain without the
        // year window — must exceed the windowed joint and stay below the
        // marginal P(ship < commit).
        let full = joint_t12_chain(0).max(joint);
        assert!(full >= joint);
        // Year windows in the middle of the calendar carry similar mass.
        let y95 = joint_t12_chain(date(1995, 1, 1));
        assert!((joint - y95).abs() / joint < 0.1, "{joint} vs {y95}");
    }

    #[test]
    fn order_has_late_line_fraction() {
        let p = p_order_has_late_line();
        let single = p_commit_before_receipt();
        assert!(p > single, "EXISTS over k lines beats a single line");
        assert!(p < 1.0);
    }

    #[test]
    fn name_color_probability_is_skewed() {
        let mean = p_name_contains_color_mean();
        assert!((0.02..0.12).contains(&mean), "mean = {mean}");
        // Popular colors are much more likely than rare ones.
        let popular = p_name_contains_color(0);
        let rare = p_name_contains_color(91);
        assert!(popular > 4.0 * rare, "popular {popular}, rare {rare}");
        // Weights are a probability distribution.
        let total: f64 = (0..dicts::N_COLORS).map(color_weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ndistinct_values() {
        assert_eq!(ndistinct(col(TableId::Orders, "o_orderkey"), 1.0), 1_500_000.0);
        assert_eq!(ndistinct(col(TableId::Lineitem, "l_orderkey"), 1.0), 1_500_000.0);
        assert_eq!(ndistinct(col(TableId::Lineitem, "l_quantity"), 1.0), 50.0);
        assert_eq!(ndistinct(col(TableId::Customer, "c_mktsegment"), 10.0), 5.0);
    }

    #[test]
    fn value_ranges_are_ordered() {
        for t in crate::schema::ALL_TABLES {
            for &c in t.columns() {
                let cref = col(t, c);
                let (lo, hi) = value_range(cref, 1.0);
                assert!(lo <= hi, "{cref}: ({lo}, {hi})");
            }
        }
    }
}
