//! Correlation-ranked forward feature selection (Section 2 of the paper).
//!
//! The paper observes that models using the *full* plan-level feature set
//! are frequently *less* accurate than models using a small selected subset,
//! and uses a best-first forward-selection algorithm guided by linear
//! correlation coefficients (after Witten & Frank). This module implements
//! that procedure:
//!
//! 1. Rank candidate features by |Pearson correlation| with the target.
//! 2. Starting from the empty set, repeatedly try adding the next-ranked
//!    feature; keep it if cross-validated error improves.
//! 3. Stop after `patience` consecutive non-improving additions (best-first
//!    with a bounded frontier).

use crate::cv::{cross_validate, Fold};
use crate::dataset::Dataset;
use crate::stats::pearson;
use crate::{Learner, MlError};

/// Configuration for forward selection.
#[derive(Debug, Clone)]
pub struct ForwardSelection {
    /// Number of consecutive non-improving candidate features tolerated
    /// before the search stops.
    pub patience: usize,
    /// Minimum relative improvement of CV error for a feature to be kept.
    pub min_improvement: f64,
    /// Upper bound on the number of selected features (0 = unlimited).
    pub max_features: usize,
}

impl Default for ForwardSelection {
    fn default() -> Self {
        ForwardSelection {
            patience: 4,
            min_improvement: 1e-3,
            max_features: 0,
        }
    }
}

/// Outcome of a forward-selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Selected column indices into the original dataset, in the order they
    /// were accepted.
    pub selected: Vec<usize>,
    /// Cross-validated mean relative error of the final subset.
    pub cv_error: f64,
}

/// Ranks all columns of `x` by |Pearson correlation| with `y`, strongest
/// first. Constant columns rank last (correlation treated as 0).
pub fn rank_by_correlation(x: &Dataset, y: &[f64]) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> = (0..x.n_cols())
        .map(|j| (j, pearson(&x.column(j), y).abs()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.into_iter().map(|(j, _)| j).collect()
}

/// Runs best-first forward selection of feature columns for `learner`.
///
/// `folds` provides the cross-validation splits used to score subsets; the
/// same folds are reused for every candidate so scores are comparable.
///
/// Guarantees at least one feature is selected (the top-correlated one)
/// even if no candidate beats the empty baseline.
pub fn forward_select<L: Learner + Sync>(
    config: &ForwardSelection,
    learner: &L,
    x: &Dataset,
    y: &[f64],
    folds: &[Fold],
) -> Result<SelectionResult, MlError> {
    x.check_targets(y)?;
    let ranked = rank_by_correlation(x, y);
    let mut selected: Vec<usize> = Vec::new();
    let mut best_error = f64::INFINITY;
    let mut misses = 0usize;

    for &candidate in &ranked {
        if config.max_features > 0 && selected.len() >= config.max_features {
            break;
        }
        let mut trial = selected.clone();
        trial.push(candidate);
        let sub = x.select_columns(&trial);
        let err = match cross_validate(learner, &sub, y, folds) {
            Ok(cv) => cv.mean_error(),
            // A candidate that makes the system unsolvable is simply skipped.
            Err(_) => f64::INFINITY,
        };
        // Absolute floor of 1e-12 keeps numerical jitter from counting as
        // an improvement once the error is essentially zero.
        let improved = err.is_finite()
            && (best_error.is_infinite()
                || err < best_error * (1.0 - config.min_improvement) - 1e-12);
        if improved {
            selected = trial;
            best_error = err;
            misses = 0;
        } else {
            misses += 1;
            if misses > config.patience {
                break;
            }
        }
    }

    if selected.is_empty() {
        // Degenerate data (e.g. constant target): fall back to the single
        // top-ranked feature so downstream code always has a model.
        let first = ranked.first().copied().unwrap_or(0);
        let sub = x.select_columns(&[first]);
        let err = cross_validate(learner, &sub, y, folds)
            .map(|cv| cv.mean_error())
            .unwrap_or(f64::INFINITY);
        return Ok(SelectionResult {
            selected: vec![first],
            cv_error: err,
        });
    }

    Ok(SelectionResult {
        selected,
        cv_error: best_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cv::kfold;
    use crate::LearnerKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y depends on columns 0 and 2; column 1 is pure noise, column 3 is
    /// constant.
    fn informative_dataset() -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..80 {
            let a: f64 = rng.gen_range(0.0..10.0);
            let unrelated: f64 = rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(0.0..10.0);
            rows.push(vec![a, unrelated * 100.0, b, 3.0]);
            y.push(4.0 * a + 2.0 * b + 1.0 + noise * 0.01);
        }
        (Dataset::from_rows(rows), y)
    }

    #[test]
    fn ranking_puts_informative_features_first() {
        let (x, y) = informative_dataset();
        let ranked = rank_by_correlation(&x, &y);
        // The two informative columns must outrank noise and constant.
        let pos_a = ranked.iter().position(|&c| c == 0).unwrap();
        let pos_b = ranked.iter().position(|&c| c == 2).unwrap();
        let pos_noise = ranked.iter().position(|&c| c == 1).unwrap();
        let pos_const = ranked.iter().position(|&c| c == 3).unwrap();
        assert!(pos_a < pos_noise && pos_b < pos_noise);
        assert!(pos_a < pos_const && pos_b < pos_const);
    }

    #[test]
    fn forward_selection_picks_informative_subset() {
        let (x, y) = informative_dataset();
        let folds = kfold(x.n_rows(), 5, 0);
        let learner = LearnerKind::Linear { ridge: 1e-9 };
        let result = forward_select(&ForwardSelection::default(), &learner, &x, &y, &folds)
            .expect("selection");
        assert!(result.selected.contains(&0));
        assert!(result.selected.contains(&2));
        assert!(!result.selected.contains(&3), "constant column selected");
        assert!(result.cv_error < 0.02, "cv error {}", result.cv_error);
    }

    #[test]
    fn max_features_is_respected() {
        let (x, y) = informative_dataset();
        let folds = kfold(x.n_rows(), 4, 0);
        let learner = LearnerKind::Linear { ridge: 1e-9 };
        let cfg = ForwardSelection {
            max_features: 1,
            ..ForwardSelection::default()
        };
        let result = forward_select(&cfg, &learner, &x, &y, &folds).unwrap();
        assert_eq!(result.selected.len(), 1);
    }

    #[test]
    fn always_selects_at_least_one_feature() {
        // Constant target: nothing improves, but we still get a model input.
        let x = Dataset::from_rows((0..10).map(|i| vec![i as f64, -(i as f64)]).collect());
        let y = vec![5.0; 10];
        let folds = kfold(10, 2, 0);
        let learner = LearnerKind::Linear { ridge: 1e-6 };
        let result =
            forward_select(&ForwardSelection::default(), &learner, &x, &y, &folds).unwrap();
        assert_eq!(result.selected.len(), 1);
    }
}
