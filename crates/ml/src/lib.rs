//! Learning substrate for query performance prediction.
//!
//! The paper builds its predictors out of two model families — linear
//! regression (Shark) for operator-level models and support-vector
//! regression (libsvm, nu-SVR) for plan-level models — plus a
//! correlation-ranked forward feature-selection procedure and stratified
//! K-fold cross-validation. This crate re-implements all of that from
//! scratch:
//!
//! - [`linalg`] — small dense matrices, Cholesky factorization, solves,
//!   and the vectorized (bit-identical) SMO inner-loop primitives.
//! - [`scaler`] — z-score standardization of feature columns.
//! - [`linreg`] — ordinary least squares / ridge regression.
//! - [`svr`] — epsilon-SVR with linear and RBF kernels, trained with a
//!   libsvm-style SMO solver.
//! - [`nusvr`] — nu-SVR (the paper's exact flavor), with the two-constraint
//!   Solver_NU scheme.
//! - [`feature_selection`] — best-first forward selection over features
//!   ranked by |Pearson correlation| with the target (Section 2 of the
//!   paper).
//! - [`cv`] — K-fold and stratified K-fold cross-validation (Section 5.1).
//! - [`metrics`] — mean relative error (the paper's headline metric), R²,
//!   predictive risk, RMSE, MAE.
//! - [`dataset`] — a lightweight (rows × columns) design-matrix container
//!   shared by the learners.
//! - [`par`] — deterministic fork-join parallelism on `std::thread::scope`
//!   used across the training pipeline.
//! - [`gram`] — a content-addressed cache of kernel (Gram) matrices shared
//!   by the SMO solvers, built by a blocked lane-parallel SIMD kernel.
//! - [`compiled`] — post-training compilation of trained models (flat
//!   support-vector storage, pruning, allocation-free batch prediction)
//!   for the low-latency inference path.

#![warn(missing_docs)]

pub mod compiled;
pub mod cv;
pub mod dataset;
pub mod feature_selection;
pub mod gram;
pub mod linalg;
pub mod linreg;
pub mod metrics;
pub mod nusvr;
pub mod par;
pub mod scaler;
pub mod stats;
pub mod svr;

pub use compiled::{CompiledModel, CompiledSvr, PredictScratch};
pub use cv::{holdout, kfold, stratified_kfold, CrossValidation};
pub use dataset::Dataset;
pub use feature_selection::{forward_select, ForwardSelection};
pub use gram::{GramCache, GramCacheStats};
pub use linreg::{LinearModel, LinearRegression};
pub use metrics::{mean_absolute_error, mean_relative_error, predictive_risk, r2_score, rmse};
pub use scaler::StandardScaler;
pub use stats::{RollingWindow, Welford};
pub use nusvr::{NuSvr, NuSvrParams};
pub use svr::{Kernel, Svr, SvrModel, SvrParams};

use serde::{Deserialize, Serialize};

/// Errors produced by the learning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The design matrix and target vector disagree on the number of rows,
    /// or a prediction row disagrees with the trained feature count.
    ShapeMismatch {
        /// Rows/features the operation expected.
        expected: usize,
        /// Rows/features actually supplied.
        got: usize,
    },
    /// Training was attempted on an empty dataset.
    EmptyDataset,
    /// A matrix required to be symmetric positive definite was not
    /// (within numerical tolerance), e.g. a singular normal-equation
    /// system with no ridge term.
    NotPositiveDefinite,
    /// An invalid hyper-parameter was supplied (message explains which).
    InvalidParameter(&'static str),
    /// Training data (features or targets) contained NaN or infinities.
    NonFiniteData,
    /// An iterative solver exhausted its iteration budget without
    /// satisfying its stopping condition.
    DidNotConverge {
        /// The iteration cap that was exhausted.
        iterations: usize,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            MlError::EmptyDataset => write!(f, "empty training dataset"),
            MlError::NotPositiveDefinite => {
                write!(f, "matrix not positive definite (singular system?)")
            }
            MlError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MlError::NonFiniteData => write!(f, "training data contains NaN or infinite values"),
            MlError::DidNotConverge { iterations } => {
                write!(f, "solver did not converge within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for MlError {}

/// A trained regression model: maps a feature vector to a scalar estimate.
pub trait Model: Send + Sync {
    /// Predicts the target value for one feature row.
    ///
    /// The row must have the same number of features the model was trained
    /// on.
    fn predict(&self, row: &[f64]) -> f64;

    /// Number of input features the model expects.
    fn n_features(&self) -> usize;
}

/// A learner: a model family plus hyper-parameters that can be fit to data.
pub trait Learner {
    /// Fits the learner to `x` (rows × features) and targets `y`.
    fn fit(&self, x: &Dataset, y: &[f64]) -> Result<TrainedModel, MlError>;
}

/// A concrete, serializable trained model (linear regression or SVR).
///
/// The paper *materializes* pre-built models so they are ready for future
/// predictions (Section 1); a closed enum keeps that serialization simple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TrainedModel {
    /// Ordinary least squares / ridge regression model.
    Linear(LinearModel),
    /// Support-vector regression model.
    Svr(SvrModel),
}

impl Model for TrainedModel {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            TrainedModel::Linear(m) => m.predict(row),
            TrainedModel::Svr(m) => m.predict(row),
        }
    }

    fn n_features(&self) -> usize {
        match self {
            TrainedModel::Linear(m) => m.n_features(),
            TrainedModel::Svr(m) => m.n_features(),
        }
    }
}

impl TrainedModel {
    /// Checked prediction: returns [`MlError::ShapeMismatch`] instead of
    /// panicking when the row has the wrong number of features.
    pub fn try_predict(&self, row: &[f64]) -> Result<f64, MlError> {
        match self {
            TrainedModel::Linear(m) => m.try_predict(row),
            TrainedModel::Svr(m) => m.try_predict(row),
        }
    }

    /// Compiles this model for low-latency inference (see [`compiled`]).
    /// Linear models pass through bit-identically; the compiled SVR
    /// kernel uses a fixed reduction-tree order, deterministic and
    /// thread-count independent but agreeing with this model only to
    /// summation-reordering rounding.
    pub fn compile(&self) -> CompiledModel {
        match self {
            TrainedModel::Linear(m) => CompiledModel::Linear(m.clone()),
            TrainedModel::Svr(m) => CompiledModel::Svr(m.compile()),
        }
    }

    /// Predicts a batch of rows in input order via the compiled path,
    /// bit-identical to a serial *compiled* predict loop; large batches
    /// fan out over [`par`].
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        match self {
            TrainedModel::Linear(m) => m.predict_batch(rows),
            TrainedModel::Svr(m) => m.predict_batch(rows),
        }
    }

    /// True when every learned parameter of the underlying model is finite
    /// — the registry's snapshot validation gate. A model that fails this
    /// check would silently emit NaN predictions if served.
    pub fn weights_finite(&self) -> bool {
        match self {
            TrainedModel::Linear(m) => m.weights_finite(),
            TrainedModel::Svr(m) => m.weights_finite(),
        }
    }
}

/// The two learner configurations used by the paper: linear regression for
/// operator-level models, SVR for plan-level models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LearnerKind {
    /// Ridge regression with the given regularization strength.
    Linear {
        /// L2 regularization strength.
        ridge: f64,
    },
    /// Epsilon-SVR with the given hyper-parameters.
    Svr(SvrParams),
    /// nu-SVR (the paper's exact flavor) with the given hyper-parameters.
    NuSvr(NuSvrParams),
}

impl Default for LearnerKind {
    fn default() -> Self {
        LearnerKind::Linear { ridge: 1e-6 }
    }
}

impl Learner for LearnerKind {
    fn fit(&self, x: &Dataset, y: &[f64]) -> Result<TrainedModel, MlError> {
        match self {
            LearnerKind::Linear { ridge } => LinearRegression::new(*ridge)
                .fit(x, y)
                .map(TrainedModel::Linear),
            LearnerKind::Svr(params) => ridge_fallback(Svr::new(params.clone()).fit(x, y), x, y),
            LearnerKind::NuSvr(params) => {
                ridge_fallback(NuSvr::new(params.clone()).fit(x, y), x, y)
            }
        }
    }
}

/// An SVR solver that exhausts its iteration budget falls back to ridge
/// regression: a degraded-but-sane model beats failing the whole training
/// run on the serving path. Other errors propagate untouched.
fn ridge_fallback(
    fit: Result<SvrModel, MlError>,
    x: &Dataset,
    y: &[f64],
) -> Result<TrainedModel, MlError> {
    match fit {
        Ok(m) => Ok(TrainedModel::Svr(m)),
        Err(MlError::DidNotConverge { .. }) => LinearRegression::new(1e-4)
            .fit(x, y)
            .map(TrainedModel::Linear),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learner_kind_default_is_linear() {
        match LearnerKind::default() {
            LearnerKind::Linear { ridge } => assert!(ridge > 0.0),
            _ => panic!("default learner should be linear"),
        }
    }

    #[test]
    fn errors_display() {
        let e = MlError::ShapeMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(MlError::EmptyDataset.to_string().contains("empty"));
        assert!(MlError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
    }

    #[test]
    fn svr_learners_fall_back_to_ridge_on_non_convergence() {
        // An iteration budget of 1 cannot satisfy the KKT conditions on
        // this data; the learner must degrade to a linear model rather
        // than fail or return garbage.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 0.5 * r[1] + 3.0).collect();
        let x = Dataset::from_rows(rows);
        for learner in [
            LearnerKind::Svr(SvrParams {
                max_iter: 1,
                ..SvrParams::default()
            }),
            LearnerKind::NuSvr(NuSvrParams {
                max_iter: 1,
                ..NuSvrParams::default()
            }),
        ] {
            let m = learner.fit(&x, &y).unwrap();
            assert!(matches!(m, TrainedModel::Linear(_)));
            let p = m.predict(x.row(10));
            assert!(p.is_finite(), "{p}");
        }
    }

    #[test]
    fn trained_model_roundtrips_through_serde() {
        let x = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]);
        let y = [1.0, 3.0, 5.0];
        let m = LearnerKind::Linear { ridge: 0.0 }.fit(&x, &y).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: TrainedModel = serde_json::from_str(&json).unwrap();
        assert!((back.predict(&[3.0]) - 7.0).abs() < 1e-6);
    }
}
