//! Compiled low-latency inference path.
//!
//! Training produces [`crate::TrainedModel`]s whose SVR variant stores
//! support vectors as a `Vec<Vec<f64>>` — one heap allocation per vector —
//! and whose prediction path allocates a fresh scaled-row buffer per call.
//! That layout is fine for training but wasteful at optimizer time, where
//! the paper's models are evaluated once per candidate plan under latency
//! pressure.
//!
//! [`CompiledModel`] is a post-training compilation of a trained model:
//!
//! - support vectors are packed into one contiguous row-major `Vec<f64>`,
//! - support vectors with a zero dual coefficient are pruned,
//! - the kernel dispatch is hoisted out of the per-support-vector loop,
//! - scaling, the kernel expansion, the bias, and the target inverse run in
//!   a single pass over a caller-provided scratch buffer
//!   ([`CompiledSvr::predict_into`]), so a steady-state prediction performs
//!   zero heap allocations.
//!
//! Compiled predictions are **bit-identical** to the reference
//! [`crate::SvrModel::predict`] path: support vectors are already stored in
//! scaled space, the accumulation visits them in the same order, and the
//! per-vector kernel arithmetic matches [`crate::Kernel::eval`]'s
//! left-to-right fold exactly. Pruning a zero coefficient only removes
//! `acc += ±0.0` terms, which cannot change a running sum (the lone
//! exception, `-0.0 + +0.0`, is washed out by the target-inverse affine
//! step before the value escapes). `tests/compiled_props.rs` enforces this
//! with `f64::to_bits` comparisons across kernels, gammas, and pruned-SV
//! counts.

use crate::linreg::LinearModel;
use crate::scaler::{StandardScaler, TargetScaler};
use crate::svr::{Kernel, SvrModel};
use crate::{MlError, Model};
use std::cell::RefCell;

/// Row-count threshold above which [`CompiledSvr::predict_batch`] fans out
/// over [`crate::par`]; below it the fork-join overhead outweighs the work.
const PAR_MIN_ROWS: usize = 64;

/// Reusable scratch space for [`CompiledSvr::predict_into`].
///
/// Holds the scaled-row buffer so repeated predictions (loops, batches)
/// allocate nothing after the first call. A scratch can be reused across
/// models with different feature counts; it simply resizes (retaining
/// capacity) as needed.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    xr: Vec<f64>,
}

impl PredictScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a thread-local scratch, avoiding both a per-call
    /// allocation and the need to thread a scratch through caller APIs.
    /// Falls back to a fresh scratch if the thread-local one is already
    /// borrowed (re-entrant use).
    pub fn with_thread_local<T>(f: impl FnOnce(&mut PredictScratch) -> T) -> T {
        thread_local! {
            static SCRATCH: RefCell<PredictScratch> = RefCell::new(PredictScratch::new());
        }
        SCRATCH.with(|s| match s.try_borrow_mut() {
            Ok(mut guard) => f(&mut guard),
            Err(_) => f(&mut PredictScratch::new()),
        })
    }

    fn scaled_row(&mut self, n: usize) -> &mut [f64] {
        self.xr.clear();
        self.xr.resize(n, 0.0);
        &mut self.xr
    }
}

/// An SVR model compiled for low-latency inference: flat support-vector
/// storage, zero-coefficient vectors pruned, fused scale → kernel → bias →
/// target-inverse evaluation.
#[derive(Debug, Clone)]
pub struct CompiledSvr {
    kernel: Kernel,
    gamma: f64,
    /// Support vectors, row-major, `coef.len() * n_features` values.
    sv: Vec<f64>,
    coef: Vec<f64>,
    bias: f64,
    x_scaler: StandardScaler,
    y_scaler: TargetScaler,
    n_features: usize,
}

impl CompiledSvr {
    /// Compiles a trained [`SvrModel`] (see module docs for the layout).
    pub fn compile(model: &SvrModel) -> Self {
        let d = model.n_features;
        let mut sv = Vec::new();
        let mut coef = Vec::new();
        for (row, &c) in model.support_vectors.iter().zip(&model.coefficients) {
            if c != 0.0 {
                sv.extend_from_slice(row);
                coef.push(c);
            }
        }
        CompiledSvr {
            kernel: model.kernel,
            gamma: model.gamma,
            sv,
            coef,
            bias: model.bias,
            x_scaler: model.x_scaler.clone(),
            y_scaler: model.y_scaler.clone(),
            n_features: d,
        }
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of support vectors retained after pruning.
    pub fn n_support_vectors(&self) -> usize {
        self.coef.len()
    }

    /// Predicts one (unscaled) feature row, reusing `scratch` so the call
    /// performs no heap allocation once the scratch has warmed up.
    ///
    /// The row length is checked with a `debug_assert!` only; use
    /// [`CompiledSvr::try_predict_into`] for a checked variant.
    pub fn predict_into(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        debug_assert_eq!(
            row.len(),
            self.n_features,
            "compiled svr expects {} features, got {}",
            self.n_features,
            row.len()
        );
        let xr = scratch.scaled_row(self.n_features);
        self.x_scaler.transform_row_into(row, xr);
        let d = self.n_features;
        let mut acc = self.bias;
        if d == 0 {
            // Degenerate zero-feature model: every kernel row is empty.
            for &c in &self.coef {
                acc += c * self.kernel.eval(&[], &[], self.gamma);
            }
            return self.y_scaler.inverse(acc);
        }
        // The kernel expansion mirrors `Kernel::eval`'s left-to-right
        // `sum()` fold term for term, so the accumulated value is
        // bit-identical to the reference path while the kernel dispatch
        // stays out of the loop. Common (forward-selected) feature counts
        // are dispatched to const-generic bodies whose inner loop fully
        // unrolls — same operations in the same order, minus the per-value
        // loop control that otherwise dominates at low dimension.
        acc = match self.kernel {
            Kernel::Linear => match d {
                1 => self.expand_linear::<1>(acc, xr),
                2 => self.expand_linear::<2>(acc, xr),
                3 => self.expand_linear::<3>(acc, xr),
                4 => self.expand_linear::<4>(acc, xr),
                5 => self.expand_linear::<5>(acc, xr),
                6 => self.expand_linear::<6>(acc, xr),
                7 => self.expand_linear::<7>(acc, xr),
                8 => self.expand_linear::<8>(acc, xr),
                _ => self.expand_linear_dyn(acc, xr),
            },
            Kernel::Rbf { .. } => match d {
                1 => self.expand_rbf::<1>(acc, xr),
                2 => self.expand_rbf::<2>(acc, xr),
                3 => self.expand_rbf::<3>(acc, xr),
                4 => self.expand_rbf::<4>(acc, xr),
                5 => self.expand_rbf::<5>(acc, xr),
                6 => self.expand_rbf::<6>(acc, xr),
                7 => self.expand_rbf::<7>(acc, xr),
                8 => self.expand_rbf::<8>(acc, xr),
                _ => self.expand_rbf_dyn(acc, xr),
            },
        };
        self.y_scaler.inverse(acc)
    }

    /// Linear-kernel expansion with the feature count fixed at compile
    /// time; the dot loop fully unrolls but keeps `Kernel::eval`'s
    /// accumulation order, so results are bit-identical.
    fn expand_linear<const D: usize>(&self, mut acc: f64, xr: &[f64]) -> f64 {
        let xa: &[f64; D] = xr[..D].try_into().expect("scratch sized to n_features");
        for (sv, &c) in self.sv.chunks_exact(D).zip(&self.coef) {
            let sa: &[f64; D] = sv.try_into().expect("chunks_exact yields D values");
            let mut dot = 0.0;
            for k in 0..D {
                dot += sa[k] * xa[k];
            }
            acc += c * dot;
        }
        acc
    }

    /// RBF expansion with the feature count fixed at compile time; same
    /// order-preservation argument as [`CompiledSvr::expand_linear`].
    fn expand_rbf<const D: usize>(&self, mut acc: f64, xr: &[f64]) -> f64 {
        let xa: &[f64; D] = xr[..D].try_into().expect("scratch sized to n_features");
        for (sv, &c) in self.sv.chunks_exact(D).zip(&self.coef) {
            let sa: &[f64; D] = sv.try_into().expect("chunks_exact yields D values");
            let mut sq = 0.0;
            for k in 0..D {
                let diff = sa[k] - xa[k];
                sq += diff * diff;
            }
            acc += c * (-self.gamma * sq).exp();
        }
        acc
    }

    /// Linear-kernel expansion for feature counts without a specialized
    /// body.
    fn expand_linear_dyn(&self, mut acc: f64, xr: &[f64]) -> f64 {
        for (sv, &c) in self.sv.chunks_exact(self.n_features).zip(&self.coef) {
            let mut dot = 0.0;
            for (a, b) in sv.iter().zip(xr.iter()) {
                dot += a * b;
            }
            acc += c * dot;
        }
        acc
    }

    /// RBF expansion for feature counts without a specialized body.
    fn expand_rbf_dyn(&self, mut acc: f64, xr: &[f64]) -> f64 {
        for (sv, &c) in self.sv.chunks_exact(self.n_features).zip(&self.coef) {
            let mut sq = 0.0;
            for (a, b) in sv.iter().zip(xr.iter()) {
                let diff = a - b;
                sq += diff * diff;
            }
            acc += c * (-self.gamma * sq).exp();
        }
        acc
    }

    /// Checked variant of [`CompiledSvr::predict_into`]: returns
    /// [`MlError::ShapeMismatch`] instead of asserting on a wrong-arity row.
    pub fn try_predict_into(&self, row: &[f64], scratch: &mut PredictScratch) -> Result<f64, MlError> {
        if row.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        Ok(self.predict_into(row, scratch))
    }

    /// Predicts one row with a thread-local scratch buffer.
    pub fn predict(&self, row: &[f64]) -> f64 {
        PredictScratch::with_thread_local(|s| self.predict_into(row, s))
    }

    /// Predicts a batch of rows, returning predictions in input order.
    ///
    /// Scratch buffers are reused across rows, and large batches fan out
    /// over [`crate::par`] (one thread-local scratch per worker). Results
    /// are bit-identical to a serial `predict` loop regardless of the
    /// thread count.
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        if rows.len() >= PAR_MIN_ROWS && crate::par::threads() > 1 {
            crate::par::par_map(rows, |_, r| {
                PredictScratch::with_thread_local(|s| self.predict_into(r.as_ref(), s))
            })
        } else {
            let mut scratch = PredictScratch::new();
            rows.iter()
                .map(|r| self.predict_into(r.as_ref(), &mut scratch))
                .collect()
        }
    }
}

impl Model for CompiledSvr {
    fn predict(&self, row: &[f64]) -> f64 {
        CompiledSvr::predict(self, row)
    }

    fn n_features(&self) -> usize {
        self.n_features
    }
}

/// A trained model compiled for low-latency inference.
///
/// Linear models are already a flat weight vector, so they pass through
/// unchanged; SVR models get the flat/pruned/fused treatment of
/// [`CompiledSvr`]. Predictions are bit-identical to the source
/// [`crate::TrainedModel`].
#[derive(Debug, Clone)]
pub enum CompiledModel {
    /// Compiled linear model (identical to its trained form).
    Linear(LinearModel),
    /// Compiled SVR model.
    Svr(CompiledSvr),
}

impl CompiledModel {
    /// Predicts one row, reusing `scratch` (zero allocations for the SVR
    /// variant once the scratch has warmed up).
    pub fn predict_into(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        match self {
            CompiledModel::Linear(m) => m.predict(row),
            CompiledModel::Svr(m) => m.predict_into(row, scratch),
        }
    }

    /// Checked variant of [`CompiledModel::predict_into`].
    pub fn try_predict_into(
        &self,
        row: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, MlError> {
        match self {
            CompiledModel::Linear(m) => m.try_predict(row),
            CompiledModel::Svr(m) => m.try_predict_into(row, scratch),
        }
    }

    /// Predicts a batch of rows in input order (see
    /// [`CompiledSvr::predict_batch`] for the determinism contract).
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        match self {
            CompiledModel::Linear(m) => m.predict_batch(rows),
            CompiledModel::Svr(m) => m.predict_batch(rows),
        }
    }
}

impl Model for CompiledModel {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            CompiledModel::Linear(m) => m.predict(row),
            CompiledModel::Svr(m) => CompiledSvr::predict(m, row),
        }
    }

    fn n_features(&self) -> usize {
        match self {
            CompiledModel::Linear(m) => m.n_features(),
            CompiledModel::Svr(m) => m.n_features(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::svr::{Svr, SvrParams};
    use crate::TrainedModel;

    fn fitted(kernel: Kernel) -> (Dataset, SvrModel) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i % 7) as f64, (i * i % 13) as f64])
            .collect();
        let x = Dataset::from_rows(rows);
        let y: Vec<f64> = x
            .rows()
            .map(|r| 2.0 * r[0] + r[1] * r[2] * 0.3 + 5.0)
            .collect();
        let m = Svr::new(SvrParams {
            kernel,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        (x, m)
    }

    #[test]
    fn compiled_matches_reference_bit_for_bit() {
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.0 }] {
            let (x, m) = fitted(kernel);
            let c = CompiledSvr::compile(&m);
            let mut scratch = PredictScratch::new();
            for row in x.rows() {
                assert_eq!(
                    m.predict(row).to_bits(),
                    c.predict_into(row, &mut scratch).to_bits()
                );
            }
            // Probe rows outside the training set too.
            for probe in [[100.0, 3.5, -2.0], [-7.0, 0.0, 0.25]] {
                assert_eq!(
                    m.predict(&probe).to_bits(),
                    c.predict_into(&probe, &mut scratch).to_bits()
                );
            }
        }
    }

    #[test]
    fn zero_coefficient_support_vectors_are_pruned_without_changing_bits() {
        let (x, mut m) = fitted(Kernel::Rbf { gamma: 0.0 });
        let before: Vec<u64> = x.rows().map(|r| m.predict(r).to_bits()).collect();
        // Inject explicit zero-coefficient vectors (fit never produces them,
        // but deserialized or hand-built models may).
        let fake = vec![0.5; m.n_features];
        m.support_vectors.insert(0, fake.clone());
        m.coefficients.insert(0, 0.0);
        m.support_vectors.push(fake);
        m.coefficients.push(-0.0);
        let c = CompiledSvr::compile(&m);
        assert_eq!(c.n_support_vectors(), m.n_support_vectors() - 2);
        let mut scratch = PredictScratch::new();
        for (row, &bits) in x.rows().zip(&before) {
            assert_eq!(c.predict_into(row, &mut scratch).to_bits(), bits);
        }
    }

    #[test]
    fn batch_matches_loop_and_preserves_order() {
        let (x, m) = fitted(Kernel::Rbf { gamma: 0.0 });
        let c = m.compile();
        let rows: Vec<&[f64]> = x.rows().collect();
        let batch = c.predict_batch(&rows);
        assert_eq!(batch.len(), rows.len());
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(m.predict(row).to_bits(), got.to_bits());
        }
    }

    #[test]
    fn checked_prediction_reports_shape_mismatch() {
        let (_, m) = fitted(Kernel::Linear);
        let c = m.compile();
        let mut scratch = PredictScratch::new();
        assert!(matches!(
            c.try_predict_into(&[1.0], &mut scratch),
            Err(MlError::ShapeMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(c.try_predict_into(&[1.0, 2.0, 3.0], &mut scratch).is_ok());
    }

    #[test]
    fn trained_model_compile_dispatches_both_variants() {
        let (x, m) = fitted(Kernel::Linear);
        let tm = TrainedModel::Svr(m);
        let cm = tm.compile();
        assert!(matches!(cm, CompiledModel::Svr(_)));
        let row = x.row(3);
        assert_eq!(
            crate::Model::predict(&tm, row).to_bits(),
            crate::Model::predict(&cm, row).to_bits()
        );

        let lm = TrainedModel::Linear(LinearModel {
            intercept: 1.0,
            weights: vec![2.0, 3.0],
        });
        let clm = lm.compile();
        assert_eq!(
            crate::Model::predict(&lm, &[4.0, 5.0]).to_bits(),
            crate::Model::predict(&clm, &[4.0, 5.0]).to_bits()
        );
    }
}
