//! Compiled low-latency inference path.
//!
//! Training produces [`crate::TrainedModel`]s whose SVR variant stores
//! support vectors as a `Vec<Vec<f64>>` — one heap allocation per vector —
//! and whose prediction path allocates a fresh scaled-row buffer per call.
//! That layout is fine for training but wasteful at optimizer time, where
//! the paper's models are evaluated once per candidate plan under latency
//! pressure.
//!
//! [`CompiledModel`] is a post-training compilation of a trained model:
//!
//! - support vectors with a zero dual coefficient are pruned,
//! - the surviving vectors are packed twice: once row-major
//!   ([`CompiledSvr::predict_into_unblocked`], the order-preserving
//!   reference layout) and once as **lane-padded SoA blocks** of
//!   [`LANES`] = 8 support vectors each, feature-major within a block and
//!   zero-padded to a whole block (padding carries a zero coefficient, so
//!   padded lanes only ever add `+0.0` to their own accumulator),
//! - the kernel dispatch is hoisted out of the per-support-vector loop,
//! - scaling, the kernel expansion, the bias, and the target inverse run in
//!   a single pass over a caller-provided scratch buffer
//!   ([`CompiledSvr::predict_into`]), so a steady-state prediction performs
//!   zero heap allocations (`tests/zero_alloc.rs` counts them),
//! - batched prediction blocks rows four at a time
//!   ([`CompiledSvr::predict_into_quad`]): each support-vector lane vector
//!   is loaded once and feeds four rows' accumulators, turning the
//!   load-bound per-row loop into an arithmetic-bound sweep.
//!
//! # Accumulation order
//!
//! The hot path evaluates the kernel sum in a **fixed reduction-tree
//! order**: eight independent lane accumulators `s0..s7` (support vector
//! `i` always lands in lane `i % 8`), each updated once per block in block
//! order, combined at the end as
//! `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))`. That order is part of the
//! model's numeric contract: it does not depend on the thread count, the
//! batch size, or which implementation runs. Two implementations exist —
//! an unrolled scalar tree (portable fallback) and an AVX2 path using two
//! 4-wide `f64` vectors, runtime-dispatched on
//! `is_x86_feature_detected!("avx2")` — and they are **bit-identical to
//! each other** by construction: the per-lane operation sequences are the
//! same scalar IEEE ops in the same order (the RBF `exp` stays scalar per
//! lane in both), only their interleaving across independent lanes
//! differs. `tests/simd_props.rs` enforces exact equality across random
//! models and arities. The `force-scalar` cargo feature compiles the
//! dispatch out so CI can exercise the fallback on AVX2 hosts.
//!
//! Relative to the *reference* [`crate::SvrModel::predict`] (a single
//! left-to-right fold), the tree order regroups the same additions, so
//! compiled predictions agree with the reference to summation-reordering
//! rounding (a few ULPs of the term magnitudes — `tests/compiled_props.rs`
//! bounds it against the condition of the sum) rather than bit-for-bit.
//! The fold order is retained as
//! [`CompiledSvr::predict_into_unblocked`], which *is* bit-identical to
//! the reference path and serves as the pre-SIMD baseline in
//! `perf_trajectory`. The left-to-right fold is a loop-carried dependence
//! chain — one f64 add latency per support vector — which is exactly what
//! the lane tree exists to break.

use crate::linreg::LinearModel;
use crate::scaler::{StandardScaler, TargetScaler};
use crate::svr::{Kernel, SvrModel};
use crate::{MlError, Model};
use std::cell::RefCell;

/// Support vectors per lane-padded SoA block (two 4-wide AVX2 vectors).
pub const LANES: usize = 8;

/// Row-count threshold above which [`CompiledSvr::predict_batch`] fans out
/// over [`crate::par`]; below it the fork-join overhead outweighs the work.
const PAR_MIN_ROWS: usize = 64;

/// Rows per parallel chunk in [`CompiledSvr::predict_batch`]: large enough
/// that each worker amortizes its scratch over many 4-row blocks, small
/// enough to balance uneven worker speeds.
const BATCH_CHUNK: usize = 32;

/// True when the dispatched hot path will use the AVX2 kernel on this
/// host. Always false with the `force-scalar` feature or off x86_64.
pub fn simd_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    {
        false
    }
}

/// Fixed final combine of the eight lane accumulators. Shared by the
/// scalar tree and the AVX2 path so the reduction order is identical.
#[inline(always)]
fn combine_tree(s: &[f64; LANES]) -> f64 {
    ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))
}

/// Reusable scratch space for [`CompiledSvr::predict_into`].
///
/// Holds the scaled-row buffer so repeated predictions (loops, batches)
/// allocate nothing after the first call. A scratch can be reused across
/// models with different feature counts; it simply resizes (retaining
/// capacity) as needed.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    xr: Vec<f64>,
    /// Second scaled-row buffer for the pair-row batched kernel.
    xr2: Vec<f64>,
    /// Third and fourth scaled-row buffers for the 4-row blocked kernel.
    xr3: Vec<f64>,
    xr4: Vec<f64>,
}

impl PredictScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a thread-local scratch, avoiding both a per-call
    /// allocation and the need to thread a scratch through caller APIs.
    /// Falls back to a fresh scratch if the thread-local one is already
    /// borrowed (re-entrant use).
    pub fn with_thread_local<T>(f: impl FnOnce(&mut PredictScratch) -> T) -> T {
        thread_local! {
            static SCRATCH: RefCell<PredictScratch> = RefCell::new(PredictScratch::new());
        }
        SCRATCH.with(|s| match s.try_borrow_mut() {
            Ok(mut guard) => f(&mut guard),
            Err(_) => f(&mut PredictScratch::new()),
        })
    }

    fn scaled_row(&mut self, n: usize) -> &mut [f64] {
        self.xr.clear();
        self.xr.resize(n, 0.0);
        &mut self.xr
    }

    fn scaled_pair(&mut self, n: usize) -> (&mut [f64], &mut [f64]) {
        self.xr.clear();
        self.xr.resize(n, 0.0);
        self.xr2.clear();
        self.xr2.resize(n, 0.0);
        (&mut self.xr, &mut self.xr2)
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[allow(clippy::type_complexity)]
    fn scaled_quad(&mut self, n: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        self.xr.clear();
        self.xr.resize(n, 0.0);
        self.xr2.clear();
        self.xr2.resize(n, 0.0);
        self.xr3.clear();
        self.xr3.resize(n, 0.0);
        self.xr4.clear();
        self.xr4.resize(n, 0.0);
        (&mut self.xr, &mut self.xr2, &mut self.xr3, &mut self.xr4)
    }
}

/// An SVR model compiled for low-latency inference: flat support-vector
/// storage (row-major and lane-padded SoA), zero-coefficient vectors
/// pruned, fused scale → kernel → bias → target-inverse evaluation.
#[derive(Debug, Clone)]
pub struct CompiledSvr {
    kernel: Kernel,
    gamma: f64,
    /// Support vectors, row-major, `coef.len() * n_features` values
    /// (reference-order baseline path).
    sv: Vec<f64>,
    coef: Vec<f64>,
    /// Lane-padded SoA blocks: `n_blocks * n_features * LANES` values.
    /// Block `b`, feature `k`, lane `l` lives at
    /// `b * n_features * LANES + k * LANES + l` and holds feature `k` of
    /// support vector `b * LANES + l` (zero beyond the last real vector).
    sv_lanes: Vec<f64>,
    /// Coefficients padded with zeros to `n_blocks * LANES`.
    coef_lanes: Vec<f64>,
    /// AVX2 detected at compile() time (and not compiled out).
    use_simd: bool,
    bias: f64,
    x_scaler: StandardScaler,
    y_scaler: TargetScaler,
    n_features: usize,
}

impl CompiledSvr {
    /// Compiles a trained [`SvrModel`] (see module docs for the layouts).
    pub fn compile(model: &SvrModel) -> Self {
        let d = model.n_features;
        let mut sv = Vec::new();
        let mut coef = Vec::new();
        for (row, &c) in model.support_vectors.iter().zip(&model.coefficients) {
            if c != 0.0 {
                sv.extend_from_slice(row);
                coef.push(c);
            }
        }
        let n_blocks = coef.len().div_ceil(LANES);
        let mut sv_lanes = vec![0.0; n_blocks * d * LANES];
        let mut coef_lanes = vec![0.0; n_blocks * LANES];
        for (i, &c) in coef.iter().enumerate() {
            let (b, l) = (i / LANES, i % LANES);
            coef_lanes[b * LANES + l] = c;
            for k in 0..d {
                sv_lanes[b * d * LANES + k * LANES + l] = sv[i * d + k];
            }
        }
        CompiledSvr {
            kernel: model.kernel,
            gamma: model.gamma,
            sv,
            coef,
            sv_lanes,
            coef_lanes,
            use_simd: simd_available(),
            bias: model.bias,
            x_scaler: model.x_scaler.clone(),
            y_scaler: model.y_scaler.clone(),
            n_features: d,
        }
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of support vectors retained after pruning.
    pub fn n_support_vectors(&self) -> usize {
        self.coef.len()
    }

    /// Predicts one (unscaled) feature row, reusing `scratch` so the call
    /// performs no heap allocation once the scratch has warmed up.
    ///
    /// Runs the lane-tree kernel (AVX2 when available, scalar tree
    /// otherwise — bit-identical either way). The row length is checked
    /// with a `debug_assert!` only; use [`CompiledSvr::try_predict_into`]
    /// for a checked variant.
    pub fn predict_into(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        debug_assert_eq!(
            row.len(),
            self.n_features,
            "compiled svr expects {} features, got {}",
            self.n_features,
            row.len()
        );
        let xr = scratch.scaled_row(self.n_features);
        self.x_scaler.transform_row_into(row, xr);
        self.y_scaler.inverse(self.bias + self.kernel_sum(xr))
    }

    /// Forces the unrolled scalar-tree kernel regardless of host features
    /// (same bits as the dispatched path; used by tests and benches).
    pub fn predict_into_scalar(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let xr = scratch.scaled_row(self.n_features);
        self.x_scaler.transform_row_into(row, xr);
        self.y_scaler.inverse(self.bias + self.kernel_sum_scalar(xr))
    }

    /// Forces the AVX2 kernel; `None` when it is unavailable (non-x86_64,
    /// no AVX2, or the `force-scalar` feature). Used by the bit-identity
    /// proptests and benches.
    pub fn predict_into_simd(&self, row: &[f64], scratch: &mut PredictScratch) -> Option<f64> {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                debug_assert_eq!(row.len(), self.n_features);
                let xr = scratch.scaled_row(self.n_features);
                self.x_scaler.transform_row_into(row, xr);
                // SAFETY: AVX2 presence was just verified.
                let sum = unsafe { self.kernel_sum_avx2(xr) };
                return Some(self.y_scaler.inverse(self.bias + sum));
            }
        }
        let _ = (row, scratch);
        None
    }

    /// Predicts two rows at once, sharing support-vector block loads
    /// between them on the AVX2 path (each row keeps its own lane
    /// accumulators and per-lane operation order, so both results are
    /// bit-identical to two [`CompiledSvr::predict_into`] calls). This is
    /// what makes the batched path faster than a per-row loop: the
    /// kernel becomes arithmetic-bound instead of load-bound. Falls back
    /// to two sequential scalar-tree calls when SIMD is unavailable.
    pub fn predict_into_pair(
        &self,
        row0: &[f64],
        row1: &[f64],
        scratch: &mut PredictScratch,
    ) -> (f64, f64) {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        {
            if self.use_simd && self.n_features > 0 {
                debug_assert_eq!(row0.len(), self.n_features);
                debug_assert_eq!(row1.len(), self.n_features);
                let (xr0, xr1) = scratch.scaled_pair(self.n_features);
                self.x_scaler.transform_row_into(row0, xr0);
                self.x_scaler.transform_row_into(row1, xr1);
                // SAFETY: `use_simd` is only set when AVX2 was detected.
                let (s0, s1) = unsafe { self.kernel_sum_avx2_pair(xr0, xr1) };
                return (
                    self.y_scaler.inverse(self.bias + s0),
                    self.y_scaler.inverse(self.bias + s1),
                );
            }
        }
        (
            self.predict_into(row0, scratch),
            self.predict_into(row1, scratch),
        )
    }

    /// Predicts four rows at once: one pass over the SoA blocks loading
    /// each support-vector lane vector once and feeding all four rows'
    /// accumulators. Each row keeps its own lane accumulators and per-lane
    /// operation order, so all four results are bit-identical to four
    /// [`CompiledSvr::predict_into`] calls — only the interleaving in time
    /// differs. Doubles down on the pair kernel's insight: at four rows
    /// per support-vector load the linear kernel is fully
    /// arithmetic-bound. Falls back to four sequential scalar-tree calls
    /// when SIMD is unavailable.
    pub fn predict_into_quad(
        &self,
        rows: [&[f64]; 4],
        scratch: &mut PredictScratch,
    ) -> [f64; 4] {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        {
            if self.use_simd && self.n_features > 0 {
                for r in rows {
                    debug_assert_eq!(r.len(), self.n_features);
                }
                let (xr0, xr1, xr2, xr3) = scratch.scaled_quad(self.n_features);
                self.x_scaler.transform_row_into(rows[0], xr0);
                self.x_scaler.transform_row_into(rows[1], xr1);
                self.x_scaler.transform_row_into(rows[2], xr2);
                self.x_scaler.transform_row_into(rows[3], xr3);
                // SAFETY: `use_simd` is only set when AVX2 was detected.
                let s = unsafe { self.kernel_sum_avx2_quad([xr0, xr1, xr2, xr3]) };
                return [
                    self.y_scaler.inverse(self.bias + s[0]),
                    self.y_scaler.inverse(self.bias + s[1]),
                    self.y_scaler.inverse(self.bias + s[2]),
                    self.y_scaler.inverse(self.bias + s[3]),
                ];
            }
        }
        [
            self.predict_into(rows[0], scratch),
            self.predict_into(rows[1], scratch),
            self.predict_into(rows[2], scratch),
            self.predict_into(rows[3], scratch),
        ]
    }

    /// The pre-SIMD (PR 3) path: row-major storage, single left-to-right
    /// fold in support-vector order. Bit-identical to the reference
    /// [`SvrModel::predict`]; retained as the perf-trajectory baseline and
    /// as the order oracle for `tests/compiled_props.rs`.
    pub fn predict_into_unblocked(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        debug_assert_eq!(
            row.len(),
            self.n_features,
            "compiled svr expects {} features, got {}",
            self.n_features,
            row.len()
        );
        let xr = scratch.scaled_row(self.n_features);
        self.x_scaler.transform_row_into(row, xr);
        let d = self.n_features;
        let mut acc = self.bias;
        if d == 0 {
            // Degenerate zero-feature model: every kernel row is empty.
            for &c in &self.coef {
                acc += c * self.kernel.eval(&[], &[], self.gamma);
            }
            return self.y_scaler.inverse(acc);
        }
        acc = match self.kernel {
            Kernel::Linear => match d {
                1 => self.expand_linear::<1>(acc, xr),
                2 => self.expand_linear::<2>(acc, xr),
                3 => self.expand_linear::<3>(acc, xr),
                4 => self.expand_linear::<4>(acc, xr),
                5 => self.expand_linear::<5>(acc, xr),
                6 => self.expand_linear::<6>(acc, xr),
                7 => self.expand_linear::<7>(acc, xr),
                8 => self.expand_linear::<8>(acc, xr),
                _ => self.expand_linear_dyn(acc, xr),
            },
            Kernel::Rbf { .. } => match d {
                1 => self.expand_rbf::<1>(acc, xr),
                2 => self.expand_rbf::<2>(acc, xr),
                3 => self.expand_rbf::<3>(acc, xr),
                4 => self.expand_rbf::<4>(acc, xr),
                5 => self.expand_rbf::<5>(acc, xr),
                6 => self.expand_rbf::<6>(acc, xr),
                7 => self.expand_rbf::<7>(acc, xr),
                8 => self.expand_rbf::<8>(acc, xr),
                _ => self.expand_rbf_dyn(acc, xr),
            },
        };
        self.y_scaler.inverse(acc)
    }

    /// Dispatched lane-tree kernel sum over the scaled row.
    #[inline]
    fn kernel_sum(&self, xr: &[f64]) -> f64 {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        {
            if self.use_simd && self.n_features > 0 {
                // SAFETY: `use_simd` is only set when AVX2 was detected.
                return unsafe { self.kernel_sum_avx2(xr) };
            }
        }
        self.kernel_sum_scalar(xr)
    }

    /// Unrolled scalar reduction tree: eight independent lane
    /// accumulators, per-lane ops in the exact order the AVX2 path uses.
    fn kernel_sum_scalar(&self, xr: &[f64]) -> f64 {
        let d = self.n_features;
        let mut acc = [0.0f64; LANES];
        if d == 0 {
            // Empty kernel rows: linear dot is +0.0 (never moves a lane
            // accumulator off +0.0); RBF is exp(-gamma·0) == 1, so each
            // lane just sums its coefficients.
            if matches!(self.kernel, Kernel::Rbf { .. }) {
                for cs in self.coef_lanes.chunks_exact(LANES) {
                    for (a, &c) in acc.iter_mut().zip(cs) {
                        *a += c;
                    }
                }
            }
            return combine_tree(&acc);
        }
        let blocks = self
            .sv_lanes
            .chunks_exact(d * LANES)
            .zip(self.coef_lanes.chunks_exact(LANES));
        match self.kernel {
            Kernel::Linear => {
                for (block, cs) in blocks {
                    let mut dot = [0.0f64; LANES];
                    for (svs, &x) in block.chunks_exact(LANES).zip(xr.iter()) {
                        for (dl, &s) in dot.iter_mut().zip(svs) {
                            *dl += s * x;
                        }
                    }
                    for ((a, &c), &dv) in acc.iter_mut().zip(cs).zip(&dot) {
                        *a += c * dv;
                    }
                }
            }
            Kernel::Rbf { .. } => {
                for (block, cs) in blocks {
                    let mut sq = [0.0f64; LANES];
                    for (svs, &x) in block.chunks_exact(LANES).zip(xr.iter()) {
                        for (sl, &s) in sq.iter_mut().zip(svs) {
                            let diff = s - x;
                            *sl += diff * diff;
                        }
                    }
                    for ((a, &c), &sv) in acc.iter_mut().zip(cs).zip(&sq) {
                        *a += c * (-self.gamma * sv).exp();
                    }
                }
            }
        }
        combine_tree(&acc)
    }

    /// AVX2 reduction tree: two 4-wide vectors per block (lanes 0–3 and
    /// 4–7). Per lane this performs the same scalar IEEE operations in the
    /// same order as [`CompiledSvr::kernel_sum_scalar`] — multiplies and
    /// adds vectorize element-wise, the RBF `exp` stays scalar per lane —
    /// so the two paths are bit-identical.
    ///
    /// # Safety
    /// Callers must ensure AVX2 is available. `xr` must hold
    /// `self.n_features > 0` values.
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[target_feature(enable = "avx2")]
    unsafe fn kernel_sum_avx2(&self, xr: &[f64]) -> f64 {
        use std::arch::x86_64::*;
        let d = self.n_features;
        let n_blocks = self.coef_lanes.len() / LANES;
        let sv = self.sv_lanes.as_ptr();
        let cf = self.coef_lanes.as_ptr();
        let mut acc = [0.0f64; LANES];
        match self.kernel {
            Kernel::Linear => {
                let mut acc_lo = _mm256_setzero_pd();
                let mut acc_hi = _mm256_setzero_pd();
                for b in 0..n_blocks {
                    let base = b * d * LANES;
                    let mut dot_lo = _mm256_setzero_pd();
                    let mut dot_hi = _mm256_setzero_pd();
                    for k in 0..d {
                        let x = _mm256_set1_pd(*xr.get_unchecked(k));
                        let p = sv.add(base + k * LANES);
                        dot_lo = _mm256_add_pd(dot_lo, _mm256_mul_pd(_mm256_loadu_pd(p), x));
                        dot_hi = _mm256_add_pd(dot_hi, _mm256_mul_pd(_mm256_loadu_pd(p.add(4)), x));
                    }
                    let cp = cf.add(b * LANES);
                    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(_mm256_loadu_pd(cp), dot_lo));
                    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(_mm256_loadu_pd(cp.add(4)), dot_hi));
                }
                _mm256_storeu_pd(acc.as_mut_ptr(), acc_lo);
                _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc_hi);
            }
            Kernel::Rbf { .. } => {
                for b in 0..n_blocks {
                    let base = b * d * LANES;
                    let mut sq_lo = _mm256_setzero_pd();
                    let mut sq_hi = _mm256_setzero_pd();
                    for k in 0..d {
                        let x = _mm256_set1_pd(*xr.get_unchecked(k));
                        let p = sv.add(base + k * LANES);
                        let dl = _mm256_sub_pd(_mm256_loadu_pd(p), x);
                        let dh = _mm256_sub_pd(_mm256_loadu_pd(p.add(4)), x);
                        sq_lo = _mm256_add_pd(sq_lo, _mm256_mul_pd(dl, dl));
                        sq_hi = _mm256_add_pd(sq_hi, _mm256_mul_pd(dh, dh));
                    }
                    let mut sq = [0.0f64; LANES];
                    _mm256_storeu_pd(sq.as_mut_ptr(), sq_lo);
                    _mm256_storeu_pd(sq.as_mut_ptr().add(4), sq_hi);
                    // Scalar exp per lane keeps bit-identity with the
                    // scalar tree (and dominates the block cost anyway).
                    for (l, (a, &sqv)) in acc.iter_mut().zip(&sq).enumerate() {
                        *a += *cf.add(b * LANES + l) * (-self.gamma * sqv).exp();
                    }
                }
            }
        }
        combine_tree(&acc)
    }

    /// Two-row AVX2 kernel: one pass over the SoA blocks computing both
    /// rows' kernel sums, loading each support-vector lane vector once.
    /// Per row, every lane performs the exact operation sequence of
    /// [`CompiledSvr::kernel_sum_avx2`] — only the interleaving in time
    /// differs — so each result is bit-identical to the single-row path.
    ///
    /// # Safety
    /// Callers must ensure AVX2 is available. `xr0` and `xr1` must hold
    /// `self.n_features > 0` values each.
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[target_feature(enable = "avx2")]
    unsafe fn kernel_sum_avx2_pair(&self, xr0: &[f64], xr1: &[f64]) -> (f64, f64) {
        use std::arch::x86_64::*;
        let d = self.n_features;
        let n_blocks = self.coef_lanes.len() / LANES;
        let sv = self.sv_lanes.as_ptr();
        let cf = self.coef_lanes.as_ptr();
        let mut acc0 = [0.0f64; LANES];
        let mut acc1 = [0.0f64; LANES];
        match self.kernel {
            Kernel::Linear => {
                let mut a0_lo = _mm256_setzero_pd();
                let mut a0_hi = _mm256_setzero_pd();
                let mut a1_lo = _mm256_setzero_pd();
                let mut a1_hi = _mm256_setzero_pd();
                for b in 0..n_blocks {
                    let base = b * d * LANES;
                    let mut d0_lo = _mm256_setzero_pd();
                    let mut d0_hi = _mm256_setzero_pd();
                    let mut d1_lo = _mm256_setzero_pd();
                    let mut d1_hi = _mm256_setzero_pd();
                    for k in 0..d {
                        let x0 = _mm256_set1_pd(*xr0.get_unchecked(k));
                        let x1 = _mm256_set1_pd(*xr1.get_unchecked(k));
                        let p = sv.add(base + k * LANES);
                        let s_lo = _mm256_loadu_pd(p);
                        let s_hi = _mm256_loadu_pd(p.add(4));
                        d0_lo = _mm256_add_pd(d0_lo, _mm256_mul_pd(s_lo, x0));
                        d0_hi = _mm256_add_pd(d0_hi, _mm256_mul_pd(s_hi, x0));
                        d1_lo = _mm256_add_pd(d1_lo, _mm256_mul_pd(s_lo, x1));
                        d1_hi = _mm256_add_pd(d1_hi, _mm256_mul_pd(s_hi, x1));
                    }
                    let cp = cf.add(b * LANES);
                    let c_lo = _mm256_loadu_pd(cp);
                    let c_hi = _mm256_loadu_pd(cp.add(4));
                    a0_lo = _mm256_add_pd(a0_lo, _mm256_mul_pd(c_lo, d0_lo));
                    a0_hi = _mm256_add_pd(a0_hi, _mm256_mul_pd(c_hi, d0_hi));
                    a1_lo = _mm256_add_pd(a1_lo, _mm256_mul_pd(c_lo, d1_lo));
                    a1_hi = _mm256_add_pd(a1_hi, _mm256_mul_pd(c_hi, d1_hi));
                }
                _mm256_storeu_pd(acc0.as_mut_ptr(), a0_lo);
                _mm256_storeu_pd(acc0.as_mut_ptr().add(4), a0_hi);
                _mm256_storeu_pd(acc1.as_mut_ptr(), a1_lo);
                _mm256_storeu_pd(acc1.as_mut_ptr().add(4), a1_hi);
            }
            Kernel::Rbf { .. } => {
                for b in 0..n_blocks {
                    let base = b * d * LANES;
                    let mut sq0_lo = _mm256_setzero_pd();
                    let mut sq0_hi = _mm256_setzero_pd();
                    let mut sq1_lo = _mm256_setzero_pd();
                    let mut sq1_hi = _mm256_setzero_pd();
                    for k in 0..d {
                        let x0 = _mm256_set1_pd(*xr0.get_unchecked(k));
                        let x1 = _mm256_set1_pd(*xr1.get_unchecked(k));
                        let p = sv.add(base + k * LANES);
                        let s_lo = _mm256_loadu_pd(p);
                        let s_hi = _mm256_loadu_pd(p.add(4));
                        let e0_lo = _mm256_sub_pd(s_lo, x0);
                        let e0_hi = _mm256_sub_pd(s_hi, x0);
                        let e1_lo = _mm256_sub_pd(s_lo, x1);
                        let e1_hi = _mm256_sub_pd(s_hi, x1);
                        sq0_lo = _mm256_add_pd(sq0_lo, _mm256_mul_pd(e0_lo, e0_lo));
                        sq0_hi = _mm256_add_pd(sq0_hi, _mm256_mul_pd(e0_hi, e0_hi));
                        sq1_lo = _mm256_add_pd(sq1_lo, _mm256_mul_pd(e1_lo, e1_lo));
                        sq1_hi = _mm256_add_pd(sq1_hi, _mm256_mul_pd(e1_hi, e1_hi));
                    }
                    let mut sq0 = [0.0f64; LANES];
                    let mut sq1 = [0.0f64; LANES];
                    _mm256_storeu_pd(sq0.as_mut_ptr(), sq0_lo);
                    _mm256_storeu_pd(sq0.as_mut_ptr().add(4), sq0_hi);
                    _mm256_storeu_pd(sq1.as_mut_ptr(), sq1_lo);
                    _mm256_storeu_pd(sq1.as_mut_ptr().add(4), sq1_hi);
                    for l in 0..LANES {
                        let c = *cf.add(b * LANES + l);
                        acc0[l] += c * (-self.gamma * sq0[l]).exp();
                        acc1[l] += c * (-self.gamma * sq1[l]).exp();
                    }
                }
            }
        }
        (combine_tree(&acc0), combine_tree(&acc1))
    }

    /// Four-row AVX2 kernel: one pass over the SoA blocks computing all
    /// four rows' kernel sums, loading each support-vector lane vector
    /// once. Per row, every lane performs the exact operation sequence of
    /// [`CompiledSvr::kernel_sum_avx2`] — only the interleaving in time
    /// differs — so each result is bit-identical to the single-row path.
    ///
    /// # Safety
    /// Callers must ensure AVX2 is available. Every row in `xrs` must hold
    /// `self.n_features > 0` values.
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[target_feature(enable = "avx2")]
    unsafe fn kernel_sum_avx2_quad(&self, xrs: [&[f64]; 4]) -> [f64; 4] {
        use std::arch::x86_64::*;
        let d = self.n_features;
        let n_blocks = self.coef_lanes.len() / LANES;
        let sv = self.sv_lanes.as_ptr();
        let cf = self.coef_lanes.as_ptr();
        let mut acc = [[0.0f64; LANES]; 4];
        match self.kernel {
            Kernel::Linear => {
                let mut a_lo = [_mm256_setzero_pd(); 4];
                let mut a_hi = [_mm256_setzero_pd(); 4];
                for b in 0..n_blocks {
                    let base = b * d * LANES;
                    let mut d_lo = [_mm256_setzero_pd(); 4];
                    let mut d_hi = [_mm256_setzero_pd(); 4];
                    for k in 0..d {
                        let p = sv.add(base + k * LANES);
                        let s_lo = _mm256_loadu_pd(p);
                        let s_hi = _mm256_loadu_pd(p.add(4));
                        for (r, xr) in xrs.iter().enumerate() {
                            let x = _mm256_set1_pd(*xr.get_unchecked(k));
                            d_lo[r] = _mm256_add_pd(d_lo[r], _mm256_mul_pd(s_lo, x));
                            d_hi[r] = _mm256_add_pd(d_hi[r], _mm256_mul_pd(s_hi, x));
                        }
                    }
                    let cp = cf.add(b * LANES);
                    let c_lo = _mm256_loadu_pd(cp);
                    let c_hi = _mm256_loadu_pd(cp.add(4));
                    for r in 0..4 {
                        a_lo[r] = _mm256_add_pd(a_lo[r], _mm256_mul_pd(c_lo, d_lo[r]));
                        a_hi[r] = _mm256_add_pd(a_hi[r], _mm256_mul_pd(c_hi, d_hi[r]));
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_pd(acc[r].as_mut_ptr(), a_lo[r]);
                    _mm256_storeu_pd(acc[r].as_mut_ptr().add(4), a_hi[r]);
                }
            }
            Kernel::Rbf { .. } => {
                for b in 0..n_blocks {
                    let base = b * d * LANES;
                    let mut sq_lo = [_mm256_setzero_pd(); 4];
                    let mut sq_hi = [_mm256_setzero_pd(); 4];
                    for k in 0..d {
                        let p = sv.add(base + k * LANES);
                        let s_lo = _mm256_loadu_pd(p);
                        let s_hi = _mm256_loadu_pd(p.add(4));
                        for (r, xr) in xrs.iter().enumerate() {
                            let x = _mm256_set1_pd(*xr.get_unchecked(k));
                            let e_lo = _mm256_sub_pd(s_lo, x);
                            let e_hi = _mm256_sub_pd(s_hi, x);
                            sq_lo[r] = _mm256_add_pd(sq_lo[r], _mm256_mul_pd(e_lo, e_lo));
                            sq_hi[r] = _mm256_add_pd(sq_hi[r], _mm256_mul_pd(e_hi, e_hi));
                        }
                    }
                    for r in 0..4 {
                        let mut sq = [0.0f64; LANES];
                        _mm256_storeu_pd(sq.as_mut_ptr(), sq_lo[r]);
                        _mm256_storeu_pd(sq.as_mut_ptr().add(4), sq_hi[r]);
                        for (l, &sqv) in sq.iter().enumerate() {
                            acc[r][l] += *cf.add(b * LANES + l) * (-self.gamma * sqv).exp();
                        }
                    }
                }
            }
        }
        [
            combine_tree(&acc[0]),
            combine_tree(&acc[1]),
            combine_tree(&acc[2]),
            combine_tree(&acc[3]),
        ]
    }

    /// Linear-kernel expansion with the feature count fixed at compile
    /// time; the dot loop fully unrolls but keeps `Kernel::eval`'s
    /// accumulation order, so results are bit-identical to the reference.
    fn expand_linear<const D: usize>(&self, mut acc: f64, xr: &[f64]) -> f64 {
        let xa: &[f64; D] = xr[..D].try_into().expect("scratch sized to n_features");
        for (sv, &c) in self.sv.chunks_exact(D).zip(&self.coef) {
            let sa: &[f64; D] = sv.try_into().expect("chunks_exact yields D values");
            let mut dot = 0.0;
            for k in 0..D {
                dot += sa[k] * xa[k];
            }
            acc += c * dot;
        }
        acc
    }

    /// RBF expansion with the feature count fixed at compile time; same
    /// order-preservation argument as [`CompiledSvr::expand_linear`].
    fn expand_rbf<const D: usize>(&self, mut acc: f64, xr: &[f64]) -> f64 {
        let xa: &[f64; D] = xr[..D].try_into().expect("scratch sized to n_features");
        for (sv, &c) in self.sv.chunks_exact(D).zip(&self.coef) {
            let sa: &[f64; D] = sv.try_into().expect("chunks_exact yields D values");
            let mut sq = 0.0;
            for k in 0..D {
                let diff = sa[k] - xa[k];
                sq += diff * diff;
            }
            acc += c * (-self.gamma * sq).exp();
        }
        acc
    }

    /// Linear-kernel expansion for feature counts without a specialized
    /// body.
    fn expand_linear_dyn(&self, mut acc: f64, xr: &[f64]) -> f64 {
        for (sv, &c) in self.sv.chunks_exact(self.n_features).zip(&self.coef) {
            let mut dot = 0.0;
            for (a, b) in sv.iter().zip(xr.iter()) {
                dot += a * b;
            }
            acc += c * dot;
        }
        acc
    }

    /// RBF expansion for feature counts without a specialized body.
    fn expand_rbf_dyn(&self, mut acc: f64, xr: &[f64]) -> f64 {
        for (sv, &c) in self.sv.chunks_exact(self.n_features).zip(&self.coef) {
            let mut sq = 0.0;
            for (a, b) in sv.iter().zip(xr.iter()) {
                let diff = a - b;
                sq += diff * diff;
            }
            acc += c * (-self.gamma * sq).exp();
        }
        acc
    }

    /// Checked variant of [`CompiledSvr::predict_into`]: returns
    /// [`MlError::ShapeMismatch`] instead of asserting on a wrong-arity row.
    pub fn try_predict_into(&self, row: &[f64], scratch: &mut PredictScratch) -> Result<f64, MlError> {
        if row.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        Ok(self.predict_into(row, scratch))
    }

    /// Predicts one row with a thread-local scratch buffer.
    pub fn predict(&self, row: &[f64]) -> f64 {
        PredictScratch::with_thread_local(|s| self.predict_into(row, s))
    }

    /// Predicts a batch of rows, returning predictions in input order.
    ///
    /// Scratch buffers are reused across rows, and large batches fan out
    /// over [`crate::par`] in chunks of [`BATCH_CHUNK`] rows (one
    /// thread-local scratch per worker), so every worker rides the 4-row
    /// blocked kernel rather than a per-row loop. The serial path is the
    /// same quad-then-pair [`CompiledSvr::predict_batch_into`] sweep.
    /// Results are bit-identical to a serial `predict` loop regardless of
    /// the thread count or blocking (every path runs the same fixed-order
    /// lane tree per row).
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        if rows.len() >= PAR_MIN_ROWS && crate::par::threads() > 1 {
            let n_chunks = rows.len().div_ceil(BATCH_CHUNK);
            let parts = crate::par::par_map_n(n_chunks, |ci| {
                let lo = ci * BATCH_CHUNK;
                let hi = (lo + BATCH_CHUNK).min(rows.len());
                let mut part = Vec::new();
                PredictScratch::with_thread_local(|s| {
                    self.predict_batch_into(&rows[lo..hi], &mut part, s);
                });
                part
            });
            let mut out = Vec::with_capacity(rows.len());
            for p in parts {
                out.extend_from_slice(&p);
            }
            out
        } else {
            let mut out = Vec::new();
            let mut scratch = PredictScratch::new();
            self.predict_batch_into(rows, &mut out, &mut scratch);
            out
        }
    }

    /// The reordering-error scale of a prediction on `row`, in target
    /// units: `(|bias| + Σ|c_i·K_i|) · |target slope|`. Any regrouping of
    /// the kernel sum — the lane tree included — agrees with the
    /// reference left-to-right fold to within a few ULPs of this
    /// magnitude; the tolerance tests in `tests/compiled_props.rs` are
    /// phrased against it.
    pub fn sum_magnitude(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        let xr = scratch.scaled_row(self.n_features);
        self.x_scaler.transform_row_into(row, xr);
        let mut mag = self.bias.abs();
        if self.n_features == 0 {
            for &c in &self.coef {
                mag += (c * self.kernel.eval(&[], &[], self.gamma)).abs();
            }
        } else {
            for (sv, &c) in self.sv.chunks_exact(self.n_features).zip(&self.coef) {
                mag += (c * self.kernel.eval(sv, xr, self.gamma)).abs();
            }
        }
        mag * self.y_scaler.slope_abs()
    }

    /// Serial batched prediction into a caller-owned output buffer: zero
    /// heap allocations once `out`'s capacity and the scratch have warmed
    /// up. Rows are processed four at a time through
    /// [`CompiledSvr::predict_into_quad`], a leftover pair through
    /// [`CompiledSvr::predict_into_pair`], then a single tail row; same
    /// bits as a per-row [`CompiledSvr::predict_into`] loop.
    pub fn predict_batch_into<R: AsRef<[f64]>>(
        &self,
        rows: &[R],
        out: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) {
        out.clear();
        out.reserve(rows.len());
        let mut i = 0;
        while i + 3 < rows.len() {
            let q = self.predict_into_quad(
                [
                    rows[i].as_ref(),
                    rows[i + 1].as_ref(),
                    rows[i + 2].as_ref(),
                    rows[i + 3].as_ref(),
                ],
                scratch,
            );
            out.extend_from_slice(&q);
            i += 4;
        }
        if i + 1 < rows.len() {
            let (a, b) = self.predict_into_pair(rows[i].as_ref(), rows[i + 1].as_ref(), scratch);
            out.push(a);
            out.push(b);
            i += 2;
        }
        if i < rows.len() {
            out.push(self.predict_into(rows[i].as_ref(), scratch));
        }
    }
}

impl Model for CompiledSvr {
    fn predict(&self, row: &[f64]) -> f64 {
        CompiledSvr::predict(self, row)
    }

    fn n_features(&self) -> usize {
        self.n_features
    }
}

/// A trained model compiled for low-latency inference.
///
/// Linear models are already a flat weight vector, so they pass through
/// unchanged (bit-identical to their trained form); SVR models get the
/// lane-padded/pruned/fused treatment of [`CompiledSvr`] and its
/// fixed-reduction-tree numeric contract (see the module docs).
#[derive(Debug, Clone)]
pub enum CompiledModel {
    /// Compiled linear model (identical to its trained form).
    Linear(LinearModel),
    /// Compiled SVR model.
    Svr(CompiledSvr),
}

impl CompiledModel {
    /// Predicts one row, reusing `scratch` (zero allocations for the SVR
    /// variant once the scratch has warmed up).
    pub fn predict_into(&self, row: &[f64], scratch: &mut PredictScratch) -> f64 {
        match self {
            CompiledModel::Linear(m) => m.predict(row),
            CompiledModel::Svr(m) => m.predict_into(row, scratch),
        }
    }

    /// Checked variant of [`CompiledModel::predict_into`].
    pub fn try_predict_into(
        &self,
        row: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, MlError> {
        match self {
            CompiledModel::Linear(m) => m.try_predict(row),
            CompiledModel::Svr(m) => m.try_predict_into(row, scratch),
        }
    }

    /// Predicts a batch of rows in input order (see
    /// [`CompiledSvr::predict_batch`] for the determinism contract).
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        match self {
            CompiledModel::Linear(m) => m.predict_batch(rows),
            CompiledModel::Svr(m) => m.predict_batch(rows),
        }
    }

    /// Serial batched prediction into a caller-owned buffer; zero heap
    /// allocations at steady state for both variants.
    pub fn predict_batch_into<R: AsRef<[f64]>>(
        &self,
        rows: &[R],
        out: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) {
        match self {
            CompiledModel::Linear(m) => {
                out.clear();
                out.reserve(rows.len());
                for r in rows {
                    out.push(m.predict(r.as_ref()));
                }
            }
            CompiledModel::Svr(m) => m.predict_batch_into(rows, out, scratch),
        }
    }
}

impl Model for CompiledModel {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            CompiledModel::Linear(m) => m.predict(row),
            CompiledModel::Svr(m) => CompiledSvr::predict(m, row),
        }
    }

    fn n_features(&self) -> usize {
        match self {
            CompiledModel::Linear(m) => m.n_features(),
            CompiledModel::Svr(m) => m.n_features(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::svr::{Svr, SvrParams};
    use crate::TrainedModel;

    fn fitted(kernel: Kernel) -> (Dataset, SvrModel) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i % 7) as f64, (i * i % 13) as f64])
            .collect();
        let x = Dataset::from_rows(rows);
        let y: Vec<f64> = x
            .rows()
            .map(|r| 2.0 * r[0] + r[1] * r[2] * 0.3 + 5.0)
            .collect();
        let m = Svr::new(SvrParams {
            kernel,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        (x, m)
    }

    fn probe_rows(x: &Dataset) -> Vec<Vec<f64>> {
        let mut rows: Vec<Vec<f64>> = x.rows().map(<[f64]>::to_vec).collect();
        rows.push(vec![100.0, 3.5, -2.0]);
        rows.push(vec![-7.0, 0.0, 0.25]);
        rows
    }

    #[test]
    fn unblocked_matches_reference_bit_for_bit() {
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.0 }] {
            let (x, m) = fitted(kernel);
            let c = CompiledSvr::compile(&m);
            let mut scratch = PredictScratch::new();
            for row in probe_rows(&x) {
                assert_eq!(
                    m.predict(&row).to_bits(),
                    c.predict_into_unblocked(&row, &mut scratch).to_bits()
                );
            }
        }
    }

    #[test]
    fn lane_tree_paths_agree_bit_for_bit() {
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.0 }] {
            let (x, m) = fitted(kernel);
            let c = CompiledSvr::compile(&m);
            let mut scratch = PredictScratch::new();
            for row in probe_rows(&x) {
                let dispatched = c.predict_into(&row, &mut scratch);
                let scalar = c.predict_into_scalar(&row, &mut scratch);
                assert_eq!(dispatched.to_bits(), scalar.to_bits());
                if let Some(simd) = c.predict_into_simd(&row, &mut scratch) {
                    assert_eq!(scalar.to_bits(), simd.to_bits());
                }
            }
        }
    }

    #[test]
    fn lane_tree_stays_within_reorder_tolerance_of_reference() {
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.0 }] {
            let (x, m) = fitted(kernel);
            let c = CompiledSvr::compile(&m);
            let mut scratch = PredictScratch::new();
            for row in probe_rows(&x) {
                let reference = m.predict(&row);
                let compiled = c.predict_into(&row, &mut scratch);
                let tol = 1e-12 * (1.0 + c.sum_magnitude(&row, &mut scratch));
                assert!(
                    (reference - compiled).abs() <= tol,
                    "|{reference} - {compiled}| > {tol}"
                );
            }
        }
    }

    #[test]
    fn zero_coefficient_support_vectors_are_pruned_without_changing_bits() {
        let (x, clean) = fitted(Kernel::Rbf { gamma: 0.0 });
        let mut scratch = PredictScratch::new();
        let cc = CompiledSvr::compile(&clean);
        let before: Vec<u64> = x
            .rows()
            .map(|r| cc.predict_into(r, &mut scratch).to_bits())
            .collect();
        // Inject explicit zero-coefficient vectors (fit never produces
        // them, but deserialized or hand-built models may). Pruning runs
        // before lane assignment, so the padded layout — and the bits —
        // match the clean compile exactly.
        let mut m = clean.clone();
        let fake = vec![0.5; m.n_features];
        m.support_vectors.insert(0, fake.clone());
        m.coefficients.insert(0, 0.0);
        m.support_vectors.push(fake);
        m.coefficients.push(-0.0);
        let c = CompiledSvr::compile(&m);
        assert_eq!(c.n_support_vectors(), m.n_support_vectors() - 2);
        for (row, &bits) in x.rows().zip(&before) {
            assert_eq!(c.predict_into(row, &mut scratch).to_bits(), bits);
        }
    }

    #[test]
    fn quad_kernel_matches_single_row_bits_for_all_tail_shapes() {
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.0 }] {
            let (x, m) = fitted(kernel);
            let c = CompiledSvr::compile(&m);
            let rows = probe_rows(&x);
            let mut scratch = PredictScratch::new();
            let expect: Vec<u64> = rows
                .iter()
                .map(|r| c.predict_into(r, &mut scratch).to_bits())
                .collect();
            // Direct quad call vs four single-row calls.
            let q = c.predict_into_quad(
                [&rows[0], &rows[1], &rows[2], &rows[3]],
                &mut scratch,
            );
            for (got, &want) in q.iter().zip(&expect) {
                assert_eq!(got.to_bits(), want);
            }
            // Every batch length from 1 to 9 covers the quad loop, the
            // leftover pair, and the single tail in all combinations.
            let mut out = Vec::new();
            for n in 1..=9.min(rows.len()) {
                let slice: Vec<&[f64]> = rows[..n].iter().map(Vec::as_slice).collect();
                c.predict_batch_into(&slice, &mut out, &mut scratch);
                let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, expect[..n], "batch length {n}");
            }
        }
    }

    #[test]
    fn batch_matches_loop_and_preserves_order() {
        let (x, m) = fitted(Kernel::Rbf { gamma: 0.0 });
        let c = m.compile();
        let rows: Vec<&[f64]> = x.rows().collect();
        let batch = c.predict_batch(&rows);
        assert_eq!(batch.len(), rows.len());
        let mut scratch = PredictScratch::new();
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(
                c.predict_into(row, &mut scratch).to_bits(),
                got.to_bits()
            );
        }
        let mut out = Vec::new();
        c.predict_batch_into(&rows, &mut out, &mut scratch);
        assert_eq!(
            batch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn checked_prediction_reports_shape_mismatch() {
        let (_, m) = fitted(Kernel::Linear);
        let c = m.compile();
        let mut scratch = PredictScratch::new();
        assert!(matches!(
            c.try_predict_into(&[1.0], &mut scratch),
            Err(MlError::ShapeMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(c.try_predict_into(&[1.0, 2.0, 3.0], &mut scratch).is_ok());
    }

    #[test]
    fn trained_model_compile_dispatches_both_variants() {
        let (x, m) = fitted(Kernel::Linear);
        let c = m.compile();
        let tm = TrainedModel::Svr(m);
        let cm = tm.compile();
        assert!(matches!(cm, CompiledModel::Svr(_)));
        let row = x.row(3);
        // The wrapper runs the same compiled kernel as the bare CompiledSvr.
        assert_eq!(
            crate::Model::predict(&cm, row).to_bits(),
            c.predict(row).to_bits()
        );

        let lm = TrainedModel::Linear(LinearModel {
            intercept: 1.0,
            weights: vec![2.0, 3.0],
        });
        let clm = lm.compile();
        // Linear models pass through compilation unchanged.
        assert_eq!(
            crate::Model::predict(&lm, &[4.0, 5.0]).to_bits(),
            crate::Model::predict(&clm, &[4.0, 5.0]).to_bits()
        );
    }
}
