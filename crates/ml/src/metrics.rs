//! Accuracy metrics.
//!
//! The paper's headline metric is the *mean relative error*
//! `(1/N) Σ |actual_i − estimate_i| / actual_i` (Section 5.1), which treats
//! all queries equally regardless of their execution time. We also provide
//! R², the *predictive risk* used by Ganapathi et al. (reference \[1\] of the
//! paper, discussed in the Section 5.2 footnote), RMSE, and MAE.

/// Mean relative error `(1/N) Σ |aᵢ − eᵢ| / aᵢ`.
///
/// Actual values of zero are guarded with a small floor so a single
/// zero-latency sample cannot produce an infinite mean.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mean_relative_error(actual: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimate.len(), "metric length mismatch");
    assert!(!actual.is_empty(), "metric on empty slice");
    let n = actual.len() as f64;
    actual
        .iter()
        .zip(estimate)
        .map(|(a, e)| (a - e).abs() / a.abs().max(f64::MIN_POSITIVE.max(1e-12)))
        .sum::<f64>()
        / n
}

/// Relative error of a single prediction: `|actual − estimate| / actual`.
pub fn relative_error(actual: f64, estimate: f64) -> f64 {
    (actual - estimate).abs() / actual.abs().max(1e-12)
}

/// Coefficient of determination R².
///
/// 1 is a perfect fit; 0 matches predicting the mean; negative is worse
/// than the mean. Returns 0 when the actuals are constant.
pub fn r2_score(actual: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimate.len(), "metric length mismatch");
    assert!(!actual.is_empty(), "metric on empty slice");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(estimate)
        .map(|(a, e)| (a - e) * (a - e))
        .sum();
    if ss_tot <= f64::EPSILON {
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

/// Predictive risk (Ganapathi et al.): `1 − Σ(aᵢ−eᵢ)² / Σ(aᵢ−ā)²`.
///
/// Numerically identical to R²; exposed under the paper's name because the
/// Section 5.2 footnote reports it (≈0.93 for the optimizer-cost baseline)
/// to show how a scale-dependent metric can look deceptively good while
/// per-query relative errors are terrible.
pub fn predictive_risk(actual: &[f64], estimate: &[f64]) -> f64 {
    r2_score(actual, estimate)
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimate.len(), "metric length mismatch");
    assert!(!actual.is_empty(), "metric on empty slice");
    let mse = actual
        .iter()
        .zip(estimate)
        .map(|(a, e)| (a - e) * (a - e))
        .sum::<f64>()
        / actual.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mean_absolute_error(actual: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimate.len(), "metric length mismatch");
    assert!(!actual.is_empty(), "metric on empty slice");
    actual
        .iter()
        .zip(estimate)
        .map(|(a, e)| (a - e).abs())
        .sum::<f64>()
        / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mre_basic() {
        // Errors: |10-15|/10 = 0.5 and |20-20|/20 = 0.
        assert!((mean_relative_error(&[10.0, 20.0], &[15.0, 20.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mre_perfect_is_zero() {
        assert_eq!(mean_relative_error(&[3.0, 4.0], &[3.0, 4.0]), 0.0);
    }

    #[test]
    fn mre_handles_zero_actual_without_infinity() {
        let v = mean_relative_error(&[0.0, 1.0], &[1.0, 1.0]);
        assert!(v.is_finite());
    }

    #[test]
    fn relative_error_single() {
        assert!((relative_error(100.0, 214.0) - 1.14).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean_baseline() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((r2_score(&a, &a) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2_score(&a, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn predictive_risk_matches_r2() {
        let a = [1.0, 5.0, 9.0];
        let e = [2.0, 5.0, 8.0];
        assert_eq!(predictive_risk(&a, &e), r2_score(&a, &e));
    }

    #[test]
    fn risk_can_be_high_while_mre_is_high() {
        // The paper's Section 5.2 point: on wide-scale data, a fit can have
        // risk near 1 while mean relative error is ~100%+.
        let actual = [1.0, 2.0, 4.0, 1000.0, 2000.0, 4000.0];
        let estimate = [3.0, 5.0, 9.0, 1010.0, 1990.0, 4005.0];
        assert!(predictive_risk(&actual, &estimate) > 0.95);
        assert!(mean_relative_error(&actual, &estimate) > 0.5);
    }

    #[test]
    fn rmse_and_mae() {
        let a = [0.0, 0.0];
        let e = [3.0, 4.0];
        assert!((rmse(&a, &e) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!((mean_absolute_error(&a, &e) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_actuals_is_zero() {
        assert_eq!(r2_score(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
    }
}
