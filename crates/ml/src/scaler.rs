//! Z-score standardization of feature columns.
//!
//! SVR with an RBF kernel is scale-sensitive, and the plan-level features
//! span many orders of magnitude (costs in the millions next to operator
//! counts below ten), so features are standardized before training.

use crate::dataset::Dataset;
use crate::stats;
use serde::{Deserialize, Serialize};

/// Per-column standardizer: `x' = (x - mean) / std`.
///
/// Columns that are constant in the training data get `std = 1` so they map
/// to zero rather than NaN.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits column means and standard deviations on `x`.
    pub fn fit(x: &Dataset) -> Self {
        let mut means = Vec::with_capacity(x.n_cols());
        let mut stds = Vec::with_capacity(x.n_cols());
        for j in 0..x.n_cols() {
            let col = x.column(j);
            means.push(stats::mean(&col));
            let sd = stats::std_dev(&col);
            stds.push(if sd > f64::EPSILON { sd } else { 1.0 });
        }
        StandardScaler { means, stds }
    }

    /// Number of columns this scaler was fit on.
    pub fn n_cols(&self) -> usize {
        self.means.len()
    }

    /// Standardizes a whole dataset.
    pub fn transform(&self, x: &Dataset) -> Dataset {
        let mut out = Dataset::new(x.n_cols());
        let mut buf = vec![0.0; x.n_cols()];
        for row in x.rows() {
            self.transform_row_into(row, &mut buf);
            out.push_row(&buf);
        }
        out
    }

    /// Standardizes one row into a fresh vector.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; row.len()];
        self.transform_row_into(row, &mut out);
        out
    }

    /// True when every fitted mean and standard deviation is finite (and
    /// no std is zero) — part of the snapshot finite-weights validation.
    pub fn is_finite(&self) -> bool {
        self.means.iter().all(|m| m.is_finite())
            && self.stds.iter().all(|s| s.is_finite() && *s != 0.0)
    }

    /// Standardizes one row into the provided buffer.
    ///
    /// This sits on the prediction hot path (both the reference and the
    /// compiled inference paths call it per row), so the length contract —
    /// `row` and `out` must match the fitted column count — is checked
    /// with `debug_assert!` only. Callers are expected to size buffers via
    /// [`StandardScaler::n_cols`].
    pub fn transform_row_into(&self, row: &[f64], out: &mut [f64]) {
        debug_assert_eq!(row.len(), self.means.len(), "scaler column mismatch");
        debug_assert_eq!(out.len(), self.means.len(), "scaler buffer mismatch");
        for j in 0..row.len() {
            out[j] = (row[j] - self.means[j]) / self.stds[j];
        }
    }
}

/// Standardizer for the target vector; used so SVR's epsilon-tube width is
/// expressed in target standard deviations.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TargetScaler {
    mean: f64,
    std: f64,
}

impl TargetScaler {
    /// Fits on the target values.
    pub fn fit(y: &[f64]) -> Self {
        let sd = stats::std_dev(y);
        TargetScaler {
            mean: stats::mean(y),
            std: if sd > f64::EPSILON { sd } else { 1.0 },
        }
    }

    /// Scales targets to zero mean, unit variance.
    pub fn transform(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|v| (v - self.mean) / self.std).collect()
    }

    /// Maps a model output back to the original target scale.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }

    /// True when the fitted mean and (non-zero) std are finite — part of
    /// the snapshot finite-weights validation.
    pub fn is_finite(&self) -> bool {
        self.mean.is_finite() && self.std.is_finite() && self.std != 0.0
    }

    /// Magnitude of the inverse transform's slope. A perturbation of `e`
    /// in scaled-target space becomes `e * slope_abs()` after
    /// [`TargetScaler::inverse`]; the compiled-path tolerance tests use
    /// this to map kernel-sum reordering error into target units.
    pub fn slope_abs(&self) -> f64 {
        self.std.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Dataset::from_rows(vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        let scaler = StandardScaler::fit(&x);
        let t = x.rows().map(|r| scaler.transform_row(r)).last().unwrap();
        // Column means are (3, 30); last row should be positive in both.
        assert!(t[0] > 0.0 && t[1] > 0.0);
        let scaled = scaler.transform(&x);
        for j in 0..2 {
            let col = scaled.column(j);
            assert!(crate::stats::mean(&col).abs() < 1e-12);
            assert!((crate::stats::std_dev(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = Dataset::from_rows(vec![vec![7.0], vec![7.0], vec![7.0]]);
        let scaler = StandardScaler::fit(&x);
        assert_eq!(scaler.transform_row(&[7.0]), vec![0.0]);
        // And unseen values stay finite.
        assert!(scaler.transform_row(&[9.0])[0].is_finite());
    }

    #[test]
    fn target_scaler_roundtrips() {
        let y = [10.0, 20.0, 30.0];
        let ts = TargetScaler::fit(&y);
        let scaled = ts.transform(&y);
        for (orig, s) in y.iter().zip(&scaled) {
            assert!((ts.inverse(*s) - orig).abs() < 1e-12);
        }
    }

    #[test]
    fn target_scaler_constant_is_safe() {
        let ts = TargetScaler::fit(&[5.0, 5.0]);
        assert_eq!(ts.inverse(ts.transform(&[5.0])[0]), 5.0);
    }
}
