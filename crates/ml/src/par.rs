//! Deterministic fork-join parallelism built on `std::thread::scope`.
//!
//! No external thread-pool dependency: each fan-out spawns scoped worker
//! threads, work items are claimed from a shared atomic counter, and
//! results are always returned **in input order**. Every helper is a pure
//! fan-out — given the same inputs and closure, the output is identical
//! regardless of the worker count — which is what lets callers across the
//! pipeline (collection, cross-validation, hybrid training) uphold the
//! bit-for-bit determinism contract documented in DESIGN.md.
//!
//! The worker count is process-wide: the `QPP_THREADS` environment
//! variable sets the default (falling back to the machine's available
//! parallelism), and [`set_threads`] overrides it at runtime — benchmarks
//! use that to time the serial and parallel paths in one process.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sentinel meaning "no runtime override active".
const NO_OVERRIDE: usize = usize::MAX;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(NO_OVERRIDE);

/// Parses a `QPP_THREADS` value: `Ok(None)` when unset, `Ok(Some(n))` for
/// a valid positive count, `Err(reason)` for anything else (unparsable,
/// zero — a process cannot run on zero workers). The caller decides the
/// fallback; keeping the parse pure keeps it unit-testable without
/// touching process environment.
pub(crate) fn parse_thread_knob(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        Ok(_) => Err(format!(
            "QPP_THREADS={raw:?} is zero; a worker pool needs at least one thread"
        )),
        Err(_) => Err(format!(
            "QPP_THREADS={raw:?} is not a positive integer"
        )),
    }
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let machine = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        match parse_thread_knob(std::env::var("QPP_THREADS").ok().as_deref()) {
            Ok(Some(n)) => n,
            Ok(None) => machine(),
            Err(reason) => {
                // Warn exactly once (OnceLock runs this closure once per
                // process) instead of silently ignoring the knob, then
                // fall back to the documented default: the machine's
                // available parallelism.
                let fallback = machine();
                eprintln!(
                    "warning: ignoring invalid {reason}; using available parallelism ({fallback})"
                );
                fallback
            }
        }
    })
}

/// Number of worker threads fan-outs may use (always ≥ 1).
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o == NO_OVERRIDE {
        default_threads()
    } else {
        o.max(1)
    }
}

/// Overrides the process-wide worker count; `0` restores the default
/// (`QPP_THREADS`, else available parallelism). With a count of `1` every
/// fan-out runs inline on the calling thread — the serial path.
///
/// Intended for benchmarks and determinism tests; concurrent callers that
/// flip this global should serialize among themselves.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(if n == 0 { NO_OVERRIDE } else { n }, Ordering::Relaxed);
}

/// Resolves a requested worker count for a long-lived pool against the
/// process-wide setting: `None` or `Some(0)` defer to [`threads`] (which
/// honours `QPP_THREADS` and [`set_threads`]); an explicit request is
/// taken as-is. Always ≥ 1.
///
/// Shared by the training fan-outs and the serving worker pool so one
/// knob sizes every thread pool in the process.
pub fn resolve_workers(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n >= 1 => n,
        _ => threads(),
    }
}

/// Order-preserving parallel map over a slice: returns
/// `items.iter().enumerate().map(|(i, t)| f(i, t))` collected in input
/// order, computed on up to [`threads`] workers.
///
/// Falls back to a plain serial loop when one worker (or one item) makes
/// spawning pointless. Panics in `f` are propagated to the caller.
pub fn par_map<'a, T, U, F>(items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &'a T) -> U + Sync,
{
    par_map_n(items.len(), |i| f(i, &items[i]))
}

/// Order-preserving parallel map over the index range `0..n`; see
/// [`par_map`].
pub fn par_map_n<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(b) => buckets.push(b),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index is produced exactly once"))
        .collect()
}

/// Runs two independent closures, on two threads when more than one worker
/// is allowed, and returns both results. Panics are propagated.
pub fn join2<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads() <= 1 {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let a = fa();
        let b = match hb.join() {
            Ok(b) => b,
            Err(p) => std::panic::resume_unwind(p),
        };
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |i, &v| {
            assert_eq!(i, v);
            v * 3
        });
        assert_eq!(out, (0..257).map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let serial: Vec<f64> = items.iter().map(|v| v.sin() * v.cos()).collect();
        let parallel = par_map(&items, |_, v| v.sin() * v.cos());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &v| v).is_empty());
        assert_eq!(par_map(&[7u32], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn resolve_workers_defers_to_global_setting() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(1)), 1);
        assert_eq!(resolve_workers(None), threads());
        assert_eq!(resolve_workers(Some(0)), threads());
    }

    #[test]
    fn thread_knob_parses_valid_rejects_invalid() {
        assert_eq!(parse_thread_knob(None), Ok(None));
        assert_eq!(parse_thread_knob(Some("4")), Ok(Some(4)));
        assert_eq!(parse_thread_knob(Some(" 8 ")), Ok(Some(8)));
        assert!(parse_thread_knob(Some("0")).unwrap_err().contains("zero"));
        for bad in ["", "four", "-2", "3.5", "1e3"] {
            let err = parse_thread_knob(Some(bad)).unwrap_err();
            assert!(
                err.contains("QPP_THREADS") && err.contains("positive integer"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn join2_returns_both_results() {
        let (a, b) = join2(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
