//! A process-wide cache of dense SVR kernel (Gram) matrices.
//!
//! The SMO solvers repeatedly need the full Gram matrix of the same
//! standardized design matrix: the start-time and run-time heads of a
//! sub-plan model train on one shared feature matrix, and forward
//! selection re-scores identical column subsets across search rounds.
//! Entries are keyed by a content hash of the (already scaled) dataset
//! plus the resolved kernel, so the cache never needs explicit
//! invalidation — different data simply hashes to a different key.
//! Matrices are computed once (upper triangle, mirrored — the kernel is
//! symmetric) and shared via `Arc`.
//!
//! Eviction is wholesale: when inserting an entry would push the cache
//! past its capacity, the whole map is cleared first. Training sets here
//! are small and matrices are transient, so a simple bound beats LRU
//! bookkeeping. The capacity defaults to 64 MiB and can be set per
//! process with the `QPP_GRAM_CACHE_CAP` environment variable (bytes) so
//! long drift-loop runs can bound the resident set.
//!
//! Construction itself is the blocked, lane-padded SoA kernel
//! [`compute_gram_blocked`]: the lower triangle is tiled into L1-sized
//! row tiles written in place and each row evaluates 8 kernel columns at
//! once, with runtime-dispatched AVX2 and an order-identical scalar
//! fallback — bit-identical to the direct per-pair [`compute_gram`] on
//! every path.

use crate::dataset::Dataset;
use crate::par;
use crate::svr::Kernel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Total `f64` entries the cache may hold before it clears itself
/// (64 MiB worth) when `QPP_GRAM_CACHE_CAP` doesn't override it.
const MAX_CACHED_FLOATS: usize = 8 << 20;

/// Default capacity in floats: `QPP_GRAM_CACHE_CAP` (a byte budget) when
/// set and valid, else the built-in 64 MiB. An invalid value warns once
/// per process instead of being silently ignored.
fn default_cap_floats() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        match cap_floats_from(std::env::var("QPP_GRAM_CACHE_CAP").ok().as_deref()) {
            Ok(floats) => floats,
            Err(reason) => {
                eprintln!(
                    "warning: ignoring invalid {reason}; using the default 64 MiB budget"
                );
                MAX_CACHED_FLOATS
            }
        }
    })
}

/// Parses a `QPP_GRAM_CACHE_CAP` byte budget into a float count. Unset
/// falls back to the 64 MiB default; unparsable or smaller-than-one-float
/// values are rejected with a reason so the caller can warn instead of
/// silently ignoring the knob.
fn cap_floats_from(bytes: Option<&str>) -> Result<usize, String> {
    let Some(raw) = bytes else {
        return Ok(MAX_CACHED_FLOATS);
    };
    match raw.trim().parse::<u64>() {
        Ok(b) if b >= 8 => Ok((b / 8) as usize),
        Ok(b) => Err(format!(
            "QPP_GRAM_CACHE_CAP={b} (bytes); the budget must fit at least one 8-byte float"
        )),
        Err(_) => Err(format!(
            "QPP_GRAM_CACHE_CAP={raw:?}: not a byte count"
        )),
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct GramKey {
    data_hash: u64,
    n_rows: usize,
    n_cols: usize,
    kernel_kind: u8,
    gamma_bits: u64,
}

/// Counters describing cache effectiveness and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GramCacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to compute the matrix.
    pub misses: usize,
    /// Matrices currently cached.
    pub entries: usize,
    /// Bytes currently held by cached matrices.
    pub bytes_resident: usize,
    /// Wholesale capacity evictions since creation (or the last
    /// [`GramCache::clear`]).
    pub evictions: usize,
}

/// Cached matrices plus the total number of cached floats (for the
/// capacity bound).
type GramMap = (HashMap<GramKey, Arc<Vec<f64>>>, usize);

/// A content-addressed cache of Gram matrices; see the module docs.
pub struct GramCache {
    map: Mutex<GramMap>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    cap_floats: usize,
}

impl GramCache {
    /// Creates an empty cache with the default capacity (64 MiB, or the
    /// `QPP_GRAM_CACHE_CAP` byte budget when set).
    pub fn new() -> GramCache {
        GramCache::with_capacity_floats(default_cap_floats())
    }

    /// Creates an empty cache bounded to roughly `cap_bytes` of matrix
    /// storage. A matrix larger than the whole budget is still computed
    /// and returned — it just isn't retained.
    pub fn with_capacity(cap_bytes: usize) -> GramCache {
        GramCache::with_capacity_floats(cap_bytes / std::mem::size_of::<f64>())
    }

    fn with_capacity_floats(cap_floats: usize) -> GramCache {
        GramCache {
            map: Mutex::new((HashMap::new(), 0)),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            cap_floats,
        }
    }

    /// The process-wide cache the SMO solvers share.
    pub fn global() -> &'static GramCache {
        static GLOBAL: OnceLock<GramCache> = OnceLock::new();
        GLOBAL.get_or_init(GramCache::new)
    }

    /// Returns the row-major `l × l` Gram matrix of `xs` under `kernel`
    /// with the resolved `gamma`, computing and caching it on a miss.
    pub fn gram(&self, xs: &Dataset, kernel: Kernel, gamma: f64) -> Arc<Vec<f64>> {
        let key = GramKey {
            data_hash: hash_dataset(xs),
            n_rows: xs.n_rows(),
            n_cols: xs.n_cols(),
            kernel_kind: match kernel {
                Kernel::Linear => 0,
                Kernel::Rbf { .. } => 1,
            },
            gamma_bits: gamma.to_bits(),
        };
        {
            let guard = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hit) = guard.0.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let m = Arc::new(compute_gram_blocked(xs, kernel, gamma));
        let mut guard = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (map, floats) = &mut *guard;
        if *floats + m.len() > self.cap_floats && !map.is_empty() {
            map.clear();
            *floats = 0;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if m.len() <= self.cap_floats {
            // A racing thread may have inserted the same key; keeping the
            // existing entry is fine (identical contents by construction).
            if map.insert(key, Arc::clone(&m)).is_none() {
                *floats += m.len();
            }
        }
        m
    }

    /// Current hit/miss/occupancy/eviction counters.
    pub fn stats(&self) -> GramCacheStats {
        let guard = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        GramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: guard.0.len(),
            bytes_resident: guard.1 * std::mem::size_of::<f64>(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached matrices and resets the counters.
    pub fn clear(&self) {
        let mut guard = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.0.clear();
        guard.1 = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

impl Default for GramCache {
    fn default() -> Self {
        GramCache::new()
    }
}

/// FNV-1a over the dataset's shape and raw `f64` bit patterns.
fn hash_dataset(xs: &Dataset) -> u64 {
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x1000_0000_01b3);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = mix(h, xs.n_rows() as u64);
    h = mix(h, xs.n_cols() as u64);
    for row in xs.rows() {
        for &v in row {
            h = mix(h, v.to_bits());
        }
    }
    h
}

/// Computes the dense Gram matrix directly, evaluating the kernel once per
/// unordered row pair and mirroring across the diagonal. Rows are computed
/// in parallel when the matrix is large enough to amortize thread spawns;
/// each entry's value is independent of the worker count.
///
/// Public so tests can compare cached matrices against a fresh computation.
pub fn compute_gram(xs: &Dataset, kernel: Kernel, gamma: f64) -> Vec<f64> {
    let l = xs.n_rows();
    let mut k = vec![0.0f64; l * l];
    if l >= 64 && par::threads() > 1 {
        let tri: Vec<Vec<f64>> = par::par_map_n(l, |i| {
            let ri = xs.row(i);
            (0..=i).map(|j| kernel.eval(ri, xs.row(j), gamma)).collect()
        });
        for (i, row) in tri.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                k[i * l + j] = v;
                k[j * l + i] = v;
            }
        }
    } else {
        for i in 0..l {
            for j in 0..=i {
                let v = kernel.eval(xs.row(i), xs.row(j), gamma);
                k[i * l + j] = v;
                k[j * l + i] = v;
            }
        }
    }
    k
}

/// Kernel columns evaluated per row — the SoA lane width.
const GRAM_LANES: usize = 8;

/// Rows per L1 tile: one 8-lane × d column block (~2 KiB at d ≈ 30) plus
/// the tile's own row data stay cache-resident while the tile is swept.
const TILE_ROWS: usize = 64;

/// Lane-padded SoA copy of the dataset: block `b` stores rows
/// `8b .. 8b+8` feature-major at `soa[(b*d + k)*8 + lane]`, zero-padding
/// lanes past the last row. Padded lanes compute garbage kernel values
/// that are never written back.
fn pack_soa(xs: &Dataset) -> Vec<f64> {
    let l = xs.n_rows();
    let d = xs.n_cols();
    let blocks = l.div_ceil(GRAM_LANES);
    let mut soa = vec![0.0f64; blocks * d * GRAM_LANES];
    for i in 0..l {
        let (b, lane) = (i / GRAM_LANES, i % GRAM_LANES);
        let row = xs.row(i);
        for (kf, &v) in row.iter().enumerate() {
            soa[(b * d + kf) * GRAM_LANES + lane] = v;
        }
    }
    soa
}

/// Evaluates 8 kernel values `K(row, block-lane)` with one ascending-`k`
/// accumulation per lane — the exact fold order of `Kernel::eval`, so
/// each lane's value is bit-identical to a direct per-pair evaluation.
fn gram_block_eval(
    ri: &[f64],
    block: &[f64],
    kernel: Kernel,
    gamma: f64,
    use_simd: bool,
    out: &mut [f64; GRAM_LANES],
) {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    if use_simd {
        // SAFETY: the caller resolved `use_simd` via `linalg::simd_enabled`.
        unsafe { gram_block_avx2(ri, block, kernel, gamma, out) };
        return;
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    let _ = use_simd;
    gram_block_scalar(ri, block, kernel, gamma, out);
}

fn gram_block_scalar(
    ri: &[f64],
    block: &[f64],
    kernel: Kernel,
    gamma: f64,
    out: &mut [f64; GRAM_LANES],
) {
    let mut acc = [0.0f64; GRAM_LANES];
    match kernel {
        Kernel::Linear => {
            for (kf, &x) in ri.iter().enumerate() {
                let col = &block[kf * GRAM_LANES..(kf + 1) * GRAM_LANES];
                for lane in 0..GRAM_LANES {
                    acc[lane] += x * col[lane];
                }
            }
            *out = acc;
        }
        Kernel::Rbf { .. } => {
            for (kf, &x) in ri.iter().enumerate() {
                let col = &block[kf * GRAM_LANES..(kf + 1) * GRAM_LANES];
                for lane in 0..GRAM_LANES {
                    let diff = x - col[lane];
                    acc[lane] += diff * diff;
                }
            }
            for lane in 0..GRAM_LANES {
                out[lane] = (-gamma * acc[lane]).exp();
            }
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn gram_block_avx2(
    ri: &[f64],
    block: &[f64],
    kernel: Kernel,
    gamma: f64,
    out: &mut [f64; GRAM_LANES],
) {
    use std::arch::x86_64::*;
    let mut lo = _mm256_setzero_pd();
    let mut hi = _mm256_setzero_pd();
    match kernel {
        Kernel::Linear => {
            for (kf, &x) in ri.iter().enumerate() {
                let xv = _mm256_set1_pd(x);
                let p = block.as_ptr().add(kf * GRAM_LANES);
                // Broadcast-mul-add per k, ascending: each lane performs
                // the scalar fold's exact op sequence (no FMA).
                lo = _mm256_add_pd(lo, _mm256_mul_pd(xv, _mm256_loadu_pd(p)));
                hi = _mm256_add_pd(hi, _mm256_mul_pd(xv, _mm256_loadu_pd(p.add(4))));
            }
            _mm256_storeu_pd(out.as_mut_ptr(), lo);
            _mm256_storeu_pd(out.as_mut_ptr().add(4), hi);
        }
        Kernel::Rbf { .. } => {
            for (kf, &x) in ri.iter().enumerate() {
                let xv = _mm256_set1_pd(x);
                let p = block.as_ptr().add(kf * GRAM_LANES);
                let d0 = _mm256_sub_pd(xv, _mm256_loadu_pd(p));
                let d1 = _mm256_sub_pd(xv, _mm256_loadu_pd(p.add(4)));
                lo = _mm256_add_pd(lo, _mm256_mul_pd(d0, d0));
                hi = _mm256_add_pd(hi, _mm256_mul_pd(d1, d1));
            }
            let mut sq = [0.0f64; GRAM_LANES];
            _mm256_storeu_pd(sq.as_mut_ptr(), lo);
            _mm256_storeu_pd(sq.as_mut_ptr().add(4), hi);
            // exp stays scalar per lane, matching the reference exactly.
            for lane in 0..GRAM_LANES {
                out[lane] = (-gamma * sq[lane]).exp();
            }
        }
    }
}

/// Four rows' kernel values against one 8-lane column block in a single
/// pass: the column vectors are loaded once per `k` and feed eight
/// independent accumulator chains (4 rows × lo/hi), which breaks the
/// add-latency bound a single row's two chains sit at. Each row's
/// per-lane fold is the exact `Kernel::eval` order, so every entry is
/// bit-identical to the one-row kernel.
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn gram_block_avx2_x4(
    rows: [&[f64]; 4],
    block: &[f64],
    kernel: Kernel,
    gamma: f64,
    out: &mut [[f64; GRAM_LANES]; 4],
) {
    use std::arch::x86_64::*;
    let d = rows[0].len();
    let (r0, r1, r2, r3) = (rows[0], rows[1], rows[2], rows[3]);
    // Named accumulators (not an indexed array) so all eight chains live
    // in registers for the whole loop.
    let mut lo0 = _mm256_setzero_pd();
    let mut lo1 = _mm256_setzero_pd();
    let mut lo2 = _mm256_setzero_pd();
    let mut lo3 = _mm256_setzero_pd();
    let mut hi0 = _mm256_setzero_pd();
    let mut hi1 = _mm256_setzero_pd();
    let mut hi2 = _mm256_setzero_pd();
    let mut hi3 = _mm256_setzero_pd();
    match kernel {
        Kernel::Linear => {
            for kf in 0..d {
                let p = block.as_ptr().add(kf * GRAM_LANES);
                let c0 = _mm256_loadu_pd(p);
                let c1 = _mm256_loadu_pd(p.add(4));
                let x0 = _mm256_set1_pd(*r0.get_unchecked(kf));
                let x1 = _mm256_set1_pd(*r1.get_unchecked(kf));
                let x2 = _mm256_set1_pd(*r2.get_unchecked(kf));
                let x3 = _mm256_set1_pd(*r3.get_unchecked(kf));
                lo0 = _mm256_add_pd(lo0, _mm256_mul_pd(x0, c0));
                hi0 = _mm256_add_pd(hi0, _mm256_mul_pd(x0, c1));
                lo1 = _mm256_add_pd(lo1, _mm256_mul_pd(x1, c0));
                hi1 = _mm256_add_pd(hi1, _mm256_mul_pd(x1, c1));
                lo2 = _mm256_add_pd(lo2, _mm256_mul_pd(x2, c0));
                hi2 = _mm256_add_pd(hi2, _mm256_mul_pd(x2, c1));
                lo3 = _mm256_add_pd(lo3, _mm256_mul_pd(x3, c0));
                hi3 = _mm256_add_pd(hi3, _mm256_mul_pd(x3, c1));
            }
        }
        Kernel::Rbf { .. } => {
            for kf in 0..d {
                let p = block.as_ptr().add(kf * GRAM_LANES);
                let c0 = _mm256_loadu_pd(p);
                let c1 = _mm256_loadu_pd(p.add(4));
                let x0 = _mm256_set1_pd(*r0.get_unchecked(kf));
                let x1 = _mm256_set1_pd(*r1.get_unchecked(kf));
                let x2 = _mm256_set1_pd(*r2.get_unchecked(kf));
                let x3 = _mm256_set1_pd(*r3.get_unchecked(kf));
                let d00 = _mm256_sub_pd(x0, c0);
                let d01 = _mm256_sub_pd(x0, c1);
                let d10 = _mm256_sub_pd(x1, c0);
                let d11 = _mm256_sub_pd(x1, c1);
                let d20 = _mm256_sub_pd(x2, c0);
                let d21 = _mm256_sub_pd(x2, c1);
                let d30 = _mm256_sub_pd(x3, c0);
                let d31 = _mm256_sub_pd(x3, c1);
                lo0 = _mm256_add_pd(lo0, _mm256_mul_pd(d00, d00));
                hi0 = _mm256_add_pd(hi0, _mm256_mul_pd(d01, d01));
                lo1 = _mm256_add_pd(lo1, _mm256_mul_pd(d10, d10));
                hi1 = _mm256_add_pd(hi1, _mm256_mul_pd(d11, d11));
                lo2 = _mm256_add_pd(lo2, _mm256_mul_pd(d20, d20));
                hi2 = _mm256_add_pd(hi2, _mm256_mul_pd(d21, d21));
                lo3 = _mm256_add_pd(lo3, _mm256_mul_pd(d30, d30));
                hi3 = _mm256_add_pd(hi3, _mm256_mul_pd(d31, d31));
            }
        }
    }
    _mm256_storeu_pd(out[0].as_mut_ptr(), lo0);
    _mm256_storeu_pd(out[0].as_mut_ptr().add(4), hi0);
    _mm256_storeu_pd(out[1].as_mut_ptr(), lo1);
    _mm256_storeu_pd(out[1].as_mut_ptr().add(4), hi1);
    _mm256_storeu_pd(out[2].as_mut_ptr(), lo2);
    _mm256_storeu_pd(out[2].as_mut_ptr().add(4), hi2);
    _mm256_storeu_pd(out[3].as_mut_ptr(), lo3);
    _mm256_storeu_pd(out[3].as_mut_ptr().add(4), hi3);
    if let Kernel::Rbf { .. } = kernel {
        // exp stays scalar per lane, matching the reference exactly.
        for o in out.iter_mut() {
            for v in o.iter_mut() {
                *v = (-gamma * *v).exp();
            }
        }
    }
}

/// Fills one row tile's lower-triangle entries (rows `rows.start..rows.end`,
/// columns `0..=i` per row) directly into `slab` — the row-major window of
/// the output matrix covering exactly those rows. Iteration is column-block
/// outer / row inner so each 8-lane column block is reused across every row
/// of the tile while it sits in L1. Entries right of the diagonal are left
/// untouched; the mirror pass fills them.
fn tile_rows_lower(
    xs: &Dataset,
    soa: &[f64],
    kernel: Kernel,
    gamma: f64,
    use_simd: bool,
    rows: std::ops::Range<usize>,
    slab: &mut [f64],
) {
    let d = xs.n_cols();
    let (r0, r1) = (rows.start, rows.end);
    let l = slab.len() / (r1 - r0);
    let mut out = [0.0f64; GRAM_LANES];
    let max_block = (r1 - 1) / GRAM_LANES;
    let write_lanes = |slab: &mut [f64], i: usize, j0: usize, out: &[f64; GRAM_LANES]| {
        let row_off = (i - r0) * l;
        let j_end = (j0 + GRAM_LANES).min(i + 1);
        for (lane, j) in (j0..j_end).enumerate() {
            slab[row_off + j] = out[lane];
        }
    };
    for b in 0..=max_block {
        let j0 = b * GRAM_LANES;
        let block = &soa[b * d * GRAM_LANES..(b + 1) * d * GRAM_LANES];
        // Rows above the block's first column don't need it (j ≤ i).
        let mut i = r0.max(j0);
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        if use_simd {
            // 4-row block: one column-block load feeds four rows'
            // accumulators; each row's per-lane fold order is unchanged.
            let mut out4 = [[0.0f64; GRAM_LANES]; 4];
            while i + 4 <= r1 {
                let rows4 = [xs.row(i), xs.row(i + 1), xs.row(i + 2), xs.row(i + 3)];
                // SAFETY: `use_simd` came from `linalg::simd_enabled`.
                unsafe { gram_block_avx2_x4(rows4, block, kernel, gamma, &mut out4) };
                for (r, o) in out4.iter().enumerate() {
                    write_lanes(slab, i + r, j0, o);
                }
                i += 4;
            }
        }
        while i < r1 {
            gram_block_eval(xs.row(i), block, kernel, gamma, use_simd, &mut out);
            write_lanes(slab, i, j0, &out);
            i += 1;
        }
    }
}

/// Raw pointer into the output matrix, shareable across the tile fan-out.
///
/// SAFETY (of the `Sync` impl): every task that receives a copy writes a
/// row range no other concurrent task touches, and reads only entries no
/// concurrent task writes, so shared access never races.
#[derive(Clone, Copy)]
struct MatPtr(*mut f64);
unsafe impl Send for MatPtr {}
unsafe impl Sync for MatPtr {}

impl MatPtr {
    /// The wrapped pointer. Going through a method (rather than the
    /// field) makes closures capture the whole `Sync` wrapper instead of
    /// edition-2021 field capture picking the raw pointer, which isn't.
    fn get(self) -> *mut f64 {
        self.0
    }
}

/// Blocked, lane-padded SoA construction of the same matrix as
/// [`compute_gram`]: the rows are tiled into L1-sized groups (at most
/// [`TILE_ROWS`], shrunk when a thread pool needs more tiles to balance
/// the triangle), each row evaluates [`GRAM_LANES`] kernel columns at
/// once (runtime-dispatched AVX2 with an order-identical scalar
/// fallback), and tiles fan out over [`crate::par`], each writing its
/// lower-triangle rows **in place** — no private buffers, no merge copy.
/// A second tiled pass mirrors the strict upper triangle, also fanned
/// out. Neither pass reorders any entry's fold, so the result is
/// independent of the worker count.
///
/// Every entry is produced by the same ascending-`k` fold as
/// `Kernel::eval`, making this bit-identical to [`compute_gram`] on
/// any host, under the `force-scalar` feature, and under the
/// [`crate::linalg::set_force_scalar`] runtime override.
pub fn compute_gram_blocked(xs: &Dataset, kernel: Kernel, gamma: f64) -> Vec<f64> {
    let l = xs.n_rows();
    let mut k = vec![0.0f64; l * l];
    if l == 0 {
        return k;
    }
    let soa = pack_soa(xs);
    let use_simd = crate::linalg::simd_enabled();
    // Lower-triangle tiles carry very uneven work (the bottom tile holds
    // O(n_tiles) times the top one's entries), so with a thread pool the
    // tiles are shrunk until there are ~4 per worker for the dynamic
    // scheduler to balance, and handed out heaviest (bottom) first. Tile
    // boundaries never change any entry's fold, only who computes it.
    let workers = par::threads();
    let tile_rows = if workers > 1 {
        l.div_ceil(4 * workers).clamp(GRAM_LANES, TILE_ROWS)
    } else {
        TILE_ROWS
    };
    let n_tiles = l.div_ceil(tile_rows);
    let kp = MatPtr(k.as_mut_ptr());
    par::par_map_n(n_tiles, |rev| {
        let t = n_tiles - 1 - rev;
        let r0 = t * tile_rows;
        let r1 = (r0 + tile_rows).min(l);
        // SAFETY: tiles partition the rows, so each task's slab is a
        // disjoint region of `k`, which outlives the fan-out.
        let slab = unsafe { std::slice::from_raw_parts_mut(kp.get().add(r0 * l), (r1 - r0) * l) };
        tile_rows_lower(xs, &soa, kernel, gamma, use_simd, r0..r1, slab);
    });
    // Mirror the strict upper triangle from the lower one, `MIR`-square
    // tiles at a time so both the reads and the transposed writes stay
    // cache-resident within each tile (the naive `k[j*l+i] = v` store
    // during construction walks the matrix at a column stride — 4 KiB at
    // SMO sizes — and costs more than the kernel arithmetic). Tasks own
    // disjoint destination row bands `jb..j_hi` and read only strictly
    // lower entries, which no mirror task writes.
    const MIR: usize = 64;
    par::par_map_n(l.div_ceil(MIR), |m| {
        let p = kp.get();
        let jb = m * MIR;
        let j_hi = (jb + MIR).min(l);
        for ib in (jb..l).step_by(MIR) {
            for i in ib..(ib + MIR).min(l) {
                for j in jb..j_hi.min(i) {
                    // SAFETY: writes land in rows `jb..j_hi` (upper
                    // triangle), reads come from the finished lower
                    // triangle; the sets are disjoint across all tasks.
                    unsafe { *p.add(j * l + i) = *p.add(i * l + j) };
                }
            }
        }
    });
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows((0..8).map(|i| vec![i as f64, (i * i) as f64]).collect())
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_same_matrix() {
        let cache = GramCache::new();
        let xs = toy();
        let a = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        let b = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_kernels_get_different_entries() {
        let cache = GramCache::new();
        let xs = toy();
        let a = cache.gram(&xs, Kernel::Linear, 0.0);
        let b = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = GramCache::new();
        let xs = toy();
        let _ = cache.gram(&xs, Kernel::Linear, 0.0);
        cache.clear();
        assert_eq!(cache.stats(), GramCacheStats::default());
    }

    #[test]
    fn gram_matrix_is_symmetric_and_correct() {
        let xs = toy();
        let l = xs.n_rows();
        let k = compute_gram(&xs, Kernel::Linear, 0.0);
        for i in 0..l {
            for j in 0..l {
                let want: f64 = xs.row(i).iter().zip(xs.row(j)).map(|(a, b)| a * b).sum();
                assert_eq!(k[i * l + j].to_bits(), k[j * l + i].to_bits());
                assert!((k[i * l + j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn blocked_gram_matches_direct_bitwise() {
        // Shapes straddling the lane width and the tile height.
        for (l, d) in [(1, 1), (3, 2), (7, 5), (8, 8), (9, 3), (20, 17), (70, 4)] {
            let rows: Vec<Vec<f64>> = (0..l)
                .map(|i| (0..d).map(|j| ((i * 31 + j * 7) as f64 * 0.73).sin()).collect())
                .collect();
            let xs = Dataset::from_rows(rows);
            for (kernel, gamma) in [(Kernel::Linear, 0.0), (Kernel::Rbf { gamma: 0.4 }, 0.4)] {
                let direct = compute_gram(&xs, kernel, gamma);
                let blocked = compute_gram_blocked(&xs, kernel, gamma);
                for (a, b) in direct.iter().zip(&blocked) {
                    assert_eq!(a.to_bits(), b.to_bits(), "l={l} d={d} {kernel:?}");
                }
            }
        }
    }

    #[test]
    fn blocked_lane_kernel_is_scalar_identical() {
        // Compare the dispatched tile kernel against the scalar-forced one
        // directly (the process-global override is exercised in the
        // dedicated identity suite).
        let xs = toy();
        let l = xs.n_rows();
        let soa = pack_soa(&xs);
        for (kernel, gamma) in [(Kernel::Linear, 0.0), (Kernel::Rbf { gamma: 0.9 }, 0.9)] {
            let mut dispatched = vec![0.0f64; l * l];
            let mut scalar = vec![0.0f64; l * l];
            tile_rows_lower(
                &xs,
                &soa,
                kernel,
                gamma,
                crate::linalg::simd_enabled(),
                0..l,
                &mut dispatched,
            );
            tile_rows_lower(&xs, &soa, kernel, gamma, false, 0..l, &mut scalar);
            for i in 0..l {
                for j in 0..=i {
                    assert_eq!(
                        dispatched[i * l + j].to_bits(),
                        scalar[i * l + j].to_bits(),
                        "{kernel:?} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn capacity_parse_handles_garbage_and_small_values() {
        // Unset: documented 64 MiB default, no warning.
        assert_eq!(cap_floats_from(None), Ok(MAX_CACHED_FLOATS));
        // Valid byte budgets convert to float counts.
        assert_eq!(cap_floats_from(Some("8")), Ok(1));
        assert_eq!(cap_floats_from(Some(" 1048576 ")), Ok(131_072));
        // Garbage and too-small budgets are rejected with a reason naming
        // the knob, so the OnceLock init can warn once and fall back.
        for bad in ["nonsense", "", "-1", "64MiB", "1e6"] {
            let err = cap_floats_from(Some(bad)).unwrap_err();
            assert!(
                err.contains("QPP_GRAM_CACHE_CAP") && err.contains("byte count"),
                "{bad:?} -> {err}"
            );
        }
        for small in ["0", "7"] {
            let err = cap_floats_from(Some(small)).unwrap_err();
            assert!(err.contains("at least one"), "{small:?} -> {err}");
        }
    }

    #[test]
    fn tiny_capacity_evicts_wholesale_and_counts_it() {
        // toy() is 8 rows -> a 64-float matrix; cap fits exactly one.
        let cache = GramCache::with_capacity(64 * 8);
        let xs = toy();
        let _ = cache.gram(&xs, Kernel::Linear, 0.0);
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (1, 0));
        assert_eq!(s.bytes_resident, 64 * 8);
        // A second, different matrix exceeds the cap -> wholesale clear.
        let _ = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (1, 1));
        assert_eq!(s.bytes_resident, 64 * 8);
        // clear() resets every counter, including evictions.
        cache.clear();
        assert_eq!(cache.stats(), GramCacheStats::default());
    }

    #[test]
    fn oversized_matrix_is_returned_but_not_retained() {
        let cache = GramCache::with_capacity(8); // one float: nothing fits
        let xs = toy();
        let m = cache.gram(&xs, Kernel::Linear, 0.0);
        assert_eq!(m.len(), 64);
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes_resident), (0, 0));
    }
}
