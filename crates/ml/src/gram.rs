//! A process-wide cache of dense SVR kernel (Gram) matrices.
//!
//! The SMO solvers repeatedly need the full Gram matrix of the same
//! standardized design matrix: the start-time and run-time heads of a
//! sub-plan model train on one shared feature matrix, and forward
//! selection re-scores identical column subsets across search rounds.
//! Entries are keyed by a content hash of the (already scaled) dataset
//! plus the resolved kernel, so the cache never needs explicit
//! invalidation — different data simply hashes to a different key.
//! Matrices are computed once (upper triangle, mirrored — the kernel is
//! symmetric) and shared via `Arc`.
//!
//! Eviction is wholesale: when inserting an entry would push the cache
//! past its capacity, the whole map is cleared first. Training sets here
//! are small and matrices are transient, so a simple bound beats LRU
//! bookkeeping.

use crate::dataset::Dataset;
use crate::par;
use crate::svr::Kernel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Total `f64` entries the cache may hold before it clears itself
/// (64 MiB worth).
const MAX_CACHED_FLOATS: usize = 8 << 20;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct GramKey {
    data_hash: u64,
    n_rows: usize,
    n_cols: usize,
    kernel_kind: u8,
    gamma_bits: u64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GramCacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to compute the matrix.
    pub misses: usize,
    /// Matrices currently cached.
    pub entries: usize,
}

/// Cached matrices plus the total number of cached floats (for the
/// capacity bound).
type GramMap = (HashMap<GramKey, Arc<Vec<f64>>>, usize);

/// A content-addressed cache of Gram matrices; see the module docs.
pub struct GramCache {
    map: Mutex<GramMap>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl GramCache {
    /// Creates an empty cache.
    pub fn new() -> GramCache {
        GramCache {
            map: Mutex::new((HashMap::new(), 0)),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The process-wide cache the SMO solvers share.
    pub fn global() -> &'static GramCache {
        static GLOBAL: OnceLock<GramCache> = OnceLock::new();
        GLOBAL.get_or_init(GramCache::new)
    }

    /// Returns the row-major `l × l` Gram matrix of `xs` under `kernel`
    /// with the resolved `gamma`, computing and caching it on a miss.
    pub fn gram(&self, xs: &Dataset, kernel: Kernel, gamma: f64) -> Arc<Vec<f64>> {
        let key = GramKey {
            data_hash: hash_dataset(xs),
            n_rows: xs.n_rows(),
            n_cols: xs.n_cols(),
            kernel_kind: match kernel {
                Kernel::Linear => 0,
                Kernel::Rbf { .. } => 1,
            },
            gamma_bits: gamma.to_bits(),
        };
        {
            let guard = self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hit) = guard.0.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let m = Arc::new(compute_gram(xs, kernel, gamma));
        let mut guard = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (map, floats) = &mut *guard;
        if *floats + m.len() > MAX_CACHED_FLOATS {
            map.clear();
            *floats = 0;
        }
        if m.len() <= MAX_CACHED_FLOATS {
            // A racing thread may have inserted the same key; keeping the
            // existing entry is fine (identical contents by construction).
            if map.insert(key, Arc::clone(&m)).is_none() {
                *floats += m.len();
            }
        }
        m
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> GramCacheStats {
        let guard = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        GramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: guard.0.len(),
        }
    }

    /// Drops all cached matrices and resets the counters.
    pub fn clear(&self) {
        let mut guard = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.0.clear();
        guard.1 = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for GramCache {
    fn default() -> Self {
        GramCache::new()
    }
}

/// FNV-1a over the dataset's shape and raw `f64` bit patterns.
fn hash_dataset(xs: &Dataset) -> u64 {
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x1000_0000_01b3);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = mix(h, xs.n_rows() as u64);
    h = mix(h, xs.n_cols() as u64);
    for row in xs.rows() {
        for &v in row {
            h = mix(h, v.to_bits());
        }
    }
    h
}

/// Computes the dense Gram matrix directly, evaluating the kernel once per
/// unordered row pair and mirroring across the diagonal. Rows are computed
/// in parallel when the matrix is large enough to amortize thread spawns;
/// each entry's value is independent of the worker count.
///
/// Public so tests can compare cached matrices against a fresh computation.
pub fn compute_gram(xs: &Dataset, kernel: Kernel, gamma: f64) -> Vec<f64> {
    let l = xs.n_rows();
    let mut k = vec![0.0f64; l * l];
    if l >= 64 && par::threads() > 1 {
        let tri: Vec<Vec<f64>> = par::par_map_n(l, |i| {
            let ri = xs.row(i);
            (0..=i).map(|j| kernel.eval(ri, xs.row(j), gamma)).collect()
        });
        for (i, row) in tri.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                k[i * l + j] = v;
                k[j * l + i] = v;
            }
        }
    } else {
        for i in 0..l {
            for j in 0..=i {
                let v = kernel.eval(xs.row(i), xs.row(j), gamma);
                k[i * l + j] = v;
                k[j * l + i] = v;
            }
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows((0..8).map(|i| vec![i as f64, (i * i) as f64]).collect())
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_same_matrix() {
        let cache = GramCache::new();
        let xs = toy();
        let a = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        let b = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_kernels_get_different_entries() {
        let cache = GramCache::new();
        let xs = toy();
        let a = cache.gram(&xs, Kernel::Linear, 0.0);
        let b = cache.gram(&xs, Kernel::Rbf { gamma: 0.5 }, 0.5);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = GramCache::new();
        let xs = toy();
        let _ = cache.gram(&xs, Kernel::Linear, 0.0);
        cache.clear();
        assert_eq!(cache.stats(), GramCacheStats::default());
    }

    #[test]
    fn gram_matrix_is_symmetric_and_correct() {
        let xs = toy();
        let l = xs.n_rows();
        let k = compute_gram(&xs, Kernel::Linear, 0.0);
        for i in 0..l {
            for j in 0..l {
                let want: f64 = xs.row(i).iter().zip(xs.row(j)).map(|(a, b)| a * b).sum();
                assert_eq!(k[i * l + j].to_bits(), k[j * l + i].to_bits());
                assert!((k[i * l + j] - want).abs() < 1e-12);
            }
        }
    }
}
