//! Epsilon support-vector regression trained with an SMO solver.
//!
//! The paper uses libsvm's nu-SVR for plan-level models. We implement the
//! closely-related epsilon-SVR (same model family and kernel machinery;
//! epsilon parameterizes the tube width directly instead of nu). The dual
//! problem is solved with a libsvm-style sequential minimal optimization
//! (SMO) loop using maximal-violating-pair working-set selection.
//!
//! Features and targets are standardized internally (see [`crate::scaler`]),
//! so `epsilon` is expressed in target standard deviations and the default
//! RBF `gamma` of `1 / n_features` is meaningful.

use crate::dataset::Dataset;
use crate::scaler::{StandardScaler, TargetScaler};
use crate::MlError;
use serde::{Deserialize, Serialize};

/// Kernel functions for SVR.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub enum Kernel {
    /// Dot-product kernel (linear SVR).
    Linear,
    /// Radial basis function `exp(-gamma * ||a - b||^2)`.
    Rbf {
        /// Bandwidth; `gamma <= 0` selects `1 / n_features` at fit time.
        gamma: f64,
    },
}

impl Kernel {
    pub(crate) fn eval(&self, a: &[f64], b: &[f64], resolved_gamma: f64) -> f64 {
        match self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { .. } => {
                let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-resolved_gamma * sq).exp()
            }
        }
    }
}

/// Hyper-parameters for epsilon-SVR.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SvrParams {
    /// Box constraint (regularization/cost); larger fits harder.
    pub c: f64,
    /// Half-width of the insensitive tube, in target standard deviations.
    pub epsilon: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT-violation tolerance for the SMO stopping rule.
    pub tol: f64,
    /// Hard cap on SMO iterations (each optimizes one variable pair).
    pub max_iter: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 10.0,
            epsilon: 0.05,
            kernel: Kernel::Rbf { gamma: 0.0 },
            tol: 1e-3,
            max_iter: 200_000,
        }
    }
}

/// Epsilon-SVR learner.
#[derive(Debug, Clone)]
pub struct Svr {
    params: SvrParams,
}

impl Svr {
    /// Creates a learner with the given hyper-parameters.
    pub fn new(params: SvrParams) -> Self {
        Svr { params }
    }

    /// Fits the SVR on `x` and `y`; returns a dense model holding the
    /// support vectors and coefficients.
    pub fn fit(&self, x: &Dataset, y: &[f64]) -> Result<SvrModel, MlError> {
        x.check_targets(y)?;
        let p = &self.params;
        if p.c <= 0.0 {
            return Err(MlError::InvalidParameter("C must be positive"));
        }
        if p.epsilon < 0.0 {
            return Err(MlError::InvalidParameter("epsilon must be non-negative"));
        }
        check_finite(x, y)?;

        let x_scaler = StandardScaler::fit(x);
        let y_scaler = TargetScaler::fit(y);
        let xs = x_scaler.transform(x);
        let ys = y_scaler.transform(y);

        let gamma = match p.kernel {
            Kernel::Rbf { gamma } if gamma > 0.0 => gamma,
            Kernel::Rbf { .. } => 1.0 / x.n_cols().max(1) as f64,
            Kernel::Linear => 0.0,
        };

        let (beta, bias, converged) = smo_solve(&xs, &ys, p, gamma);
        if !converged {
            return Err(MlError::DidNotConverge {
                iterations: p.max_iter,
            });
        }

        // Keep only support vectors (nonzero coefficients).
        let mut support = Vec::new();
        let mut coefs = Vec::new();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-12 {
                support.push(xs.row(i).to_vec());
                coefs.push(b);
            }
        }
        if !bias.is_finite() || coefs.iter().any(|c| !c.is_finite()) {
            return Err(MlError::DidNotConverge {
                iterations: p.max_iter,
            });
        }

        Ok(SvrModel {
            kernel: p.kernel,
            gamma,
            support_vectors: support,
            coefficients: coefs,
            bias,
            x_scaler,
            y_scaler,
            n_features: x.n_cols(),
        })
    }
}

/// Returns an error if any feature or target value is NaN or infinite
/// (such values would silently poison the kernel matrix and gradients).
pub(crate) fn check_finite(x: &Dataset, y: &[f64]) -> Result<(), MlError> {
    let rows_ok = x.rows().all(|r| r.iter().all(|v| v.is_finite()));
    if rows_ok && y.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(MlError::NonFiniteData)
    }
}

/// SMO over the 2l-variable epsilon-SVR dual (libsvm formulation):
/// variables `a`, signs `s_t` (+1 for the alpha block, -1 for alpha*),
/// linear term `p_t = eps - y` / `eps + y`, constraint `sum s_t a_t = 0`,
/// box `[0, C]`. Returns `(beta, bias, converged)` with
/// `beta_i = a_i - a_{i+l}`; `converged` is false only when the iteration
/// budget ran out before the KKT stopping rule fired.
fn smo_solve(xs: &Dataset, ys: &[f64], p: &SvrParams, gamma: f64) -> (Vec<f64>, f64, bool) {
    let l = xs.n_rows();
    let n = 2 * l;
    let c = p.c;

    // Dense kernel matrix; training sets are small (<= a few thousand rows).
    // Fetched from the shared cache: the start/run heads of a sub-plan
    // model and forward-selection re-scores reuse the same scaled rows.
    let k_shared = crate::gram::GramCache::global().gram(xs, p.kernel, gamma);
    let k: &[f64] = &k_shared;
    let kij = |i: usize, j: usize| k[i * l + j];
    let sign = |t: usize| if t < l { 1.0 } else { -1.0 };
    let idx = |t: usize| if t < l { t } else { t - l };

    let mut a = vec![0.0f64; n];
    // Gradient G_t = sum_u Qbar_tu a_u + p_t; starts at p_t since a = 0.
    let mut g: Vec<f64> = (0..n)
        .map(|t| {
            if t < l {
                p.epsilon - ys[t]
            } else {
                p.epsilon + ys[t - l]
            }
        })
        .collect();

    let mut converged = false;
    for _iter in 0..p.max_iter {
        // Working-set selection: maximal violating pair. The 2l scan
        // splits at l into two sign-contiguous halves (s = +1, then
        // s = −1 where `-s*g` reduces exactly to `g`), each a blocked
        // SIMD pass; merging with strict comparisons preserves the
        // sequential loop's first-wins rule bit for bit.
        let mut sel = crate::linalg::scan_violating(&a[..l], &g[..l], c, false);
        sel.merge_later(crate::linalg::scan_violating(&a[l..], &g[l..], c, true), l);
        let (i_sel, j_sel) = (sel.i_up, sel.i_low);
        let (g_max, g_min) = (sel.g_max, sel.g_min);
        if i_sel == usize::MAX || j_sel == usize::MAX || g_max - g_min < p.tol {
            converged = true;
            break;
        }
        let (i, j) = (i_sel, j_sel);
        let (si, sj) = (sign(i), sign(j));
        let (ii, jj) = (idx(i), idx(j));
        let q_ii = kij(ii, ii);
        let q_jj = kij(jj, jj);
        let q_ij_signed = si * sj * kij(ii, jj);

        let old_ai = a[i];
        let old_aj = a[j];

        if (si - sj).abs() > 0.5 {
            // Opposite signs.
            let quad = (q_ii + q_jj + 2.0 * q_ij_signed).max(1e-12);
            let delta = (-g[i] - g[j]) / quad;
            let diff = a[i] - a[j];
            a[i] += delta;
            a[j] += delta;
            if diff > 0.0 {
                if a[j] < 0.0 {
                    a[j] = 0.0;
                    a[i] = diff;
                }
            } else if a[i] < 0.0 {
                a[i] = 0.0;
                a[j] = -diff;
            }
            if diff > 0.0 {
                if a[i] > c {
                    a[i] = c;
                    a[j] = c - diff;
                }
            } else if a[j] > c {
                a[j] = c;
                a[i] = c + diff;
            }
        } else {
            // Same signs.
            let quad = (q_ii + q_jj - 2.0 * q_ij_signed).max(1e-12);
            let delta = (g[i] - g[j]) / quad;
            let sum = a[i] + a[j];
            a[i] -= delta;
            a[j] += delta;
            if sum > c {
                if a[i] > c {
                    a[i] = c;
                    a[j] = sum - c;
                } else if a[j] > c {
                    a[j] = c;
                    a[i] = sum - c;
                }
            } else if a[j] < 0.0 {
                a[j] = 0.0;
                a[i] = sum;
            } else if a[i] < 0.0 {
                a[i] = 0.0;
                a[j] = sum;
            }
        }
        // Clamp against numerical drift.
        a[i] = a[i].clamp(0.0, c);
        a[j] = a[j].clamp(0.0, c);

        let da_i = a[i] - old_ai;
        let da_j = a[j] - old_aj;
        if da_i.abs() < 1e-15 && da_j.abs() < 1e-15 {
            // Stalled at the box boundary: no further progress is possible,
            // treat as converged rather than spinning to the cap.
            converged = true;
            break;
        }
        // Hoisted row slices and sign-folded step sizes: multiplying by
        // si/sj/st (all ±1) is exact in IEEE 754, so folding them into the
        // constants keeps every gradient value bit-identical to the naive
        // per-element expression while halving the kernel lookups. The
        // element-wise update itself runs through the blocked SIMD pass.
        let row_i = &k[ii * l..(ii + 1) * l];
        let row_j = &k[jj * l..(jj + 1) * l];
        let ci = si * da_i;
        let cj = sj * da_j;
        let (g_up, g_down) = g.split_at_mut(l);
        crate::linalg::grad_pair_update(g_up, g_down, row_i, row_j, ci, cj);
    }

    // Bias: for free variables, rho = -s_t G_t equals the primal bias b.
    let mut sum = 0.0;
    let mut count = 0usize;
    for t in 0..n {
        let s = sign(t);
        if a[t] > 1e-12 && a[t] < c - 1e-12 {
            sum += -s * g[t];
            count += 1;
        }
    }
    let bias = if count > 0 {
        sum / count as f64
    } else {
        // No free variables: use the midpoint of the violating-pair bounds.
        let mut g_max = f64::NEG_INFINITY;
        let mut g_min = f64::INFINITY;
        for t in 0..n {
            let s = sign(t);
            let in_up = (s > 0.0 && a[t] < c) || (s < 0.0 && a[t] > 0.0);
            let in_low = (s > 0.0 && a[t] > 0.0) || (s < 0.0 && a[t] < c);
            let v = -s * g[t];
            if in_up {
                g_max = g_max.max(v);
            }
            if in_low {
                g_min = g_min.min(v);
            }
        }
        if g_max.is_finite() && g_min.is_finite() {
            (g_max + g_min) / 2.0
        } else {
            0.0
        }
    };

    let beta: Vec<f64> = (0..l).map(|i| a[i] - a[i + l]).collect();
    (beta, bias, converged)
}

/// A fitted SVR model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvrModel {
    pub(crate) kernel: Kernel,
    pub(crate) gamma: f64,
    pub(crate) support_vectors: Vec<Vec<f64>>,
    pub(crate) coefficients: Vec<f64>,
    pub(crate) bias: f64,
    pub(crate) x_scaler: StandardScaler,
    pub(crate) y_scaler: TargetScaler,
    pub(crate) n_features: usize,
}

impl SvrModel {
    /// Assembles a model from raw parts. Fitting ([`Svr::fit`]) and
    /// snapshot deserialization are the production paths; this exists so
    /// tests and benches can hand-build models with arbitrary
    /// support-vector counts, arities, and coefficient patterns (the
    /// compiled-path bit-identity proptests sweep shapes a fit would
    /// rarely produce). Support vectors are taken as already living in
    /// scaled space, like a fitted model's.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        kernel: Kernel,
        gamma: f64,
        support_vectors: Vec<Vec<f64>>,
        coefficients: Vec<f64>,
        bias: f64,
        x_scaler: StandardScaler,
        y_scaler: TargetScaler,
        n_features: usize,
    ) -> Self {
        assert_eq!(support_vectors.len(), coefficients.len());
        assert!(support_vectors.iter().all(|sv| sv.len() == n_features));
        assert_eq!(x_scaler.n_cols(), n_features);
        SvrModel {
            kernel,
            gamma,
            support_vectors,
            coefficients,
            bias,
            x_scaler,
            y_scaler,
            n_features,
        }
    }

    /// Predicts the target for one (unscaled) feature row.
    ///
    /// The row length is only checked with a `debug_assert!`; prediction is
    /// a hot path, and the checked variant is [`SvrModel::try_predict`].
    pub fn predict(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(
            row.len(),
            self.n_features,
            "svr model expects {} features, got {}",
            self.n_features,
            row.len()
        );
        let xr = self.x_scaler.transform_row(row);
        let mut acc = self.bias;
        for (sv, coef) in self.support_vectors.iter().zip(&self.coefficients) {
            acc += coef * self.kernel.eval(sv, &xr, self.gamma);
        }
        self.y_scaler.inverse(acc)
    }

    /// Checked prediction: returns [`MlError::ShapeMismatch`] instead of
    /// panicking when the row has the wrong number of features.
    pub fn try_predict(&self, row: &[f64]) -> Result<f64, MlError> {
        if row.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        Ok(self.predict(row))
    }

    /// Compiles this model for low-latency inference (lane-padded
    /// support-vector storage, zero-coefficient pruning, allocation-free
    /// prediction); see [`crate::compiled`]. The compiled kernel sums in a
    /// fixed reduction-tree order, so its predictions agree with this
    /// model's to summation-reordering rounding rather than bit-for-bit
    /// (the compiled `predict_into_unblocked` keeps the exact fold order).
    pub fn compile(&self) -> crate::compiled::CompiledSvr {
        crate::compiled::CompiledSvr::compile(self)
    }

    /// Predicts a batch of rows in input order via the compiled kernel,
    /// bit-identical to a serial *compiled* `predict` loop (see
    /// [`crate::compiled`] for how it relates to [`SvrModel::predict`]).
    /// Compiles once and amortizes scaling buffers across the batch;
    /// large batches fan out over [`crate::par`].
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        self.compile().predict_batch(rows)
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of support vectors retained.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// True when every learned parameter (bias, coefficients, support
    /// vectors, kernel width, scalers) is finite — the registry's snapshot
    /// validation gate.
    pub fn weights_finite(&self) -> bool {
        self.bias.is_finite()
            && self.gamma.is_finite()
            && self.coefficients.iter().all(|c| c.is_finite())
            && self
                .support_vectors
                .iter()
                .all(|sv| sv.iter().all(|v| v.is_finite()))
            && self.x_scaler.is_finite()
            && self.y_scaler.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_relative_error;

    fn grid_2d() -> (Dataset, Vec<f64>) {
        let mut rows = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let ds = Dataset::from_rows(rows);
        let y = ds.rows().map(|r| 3.0 * r[0] + 2.0 * r[1] + 10.0).collect();
        (ds, y)
    }

    #[test]
    fn linear_kernel_fits_linear_function() {
        let (x, y) = grid_2d();
        let m = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.01,
            c: 100.0,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let preds: Vec<f64> = x.rows().map(|r| m.predict(r)).collect();
        assert!(mean_relative_error(&y, &preds) < 0.05);
        // Extrapolation is linear too.
        let p = m.predict(&[12.0, 12.0]);
        assert!((p - 70.0).abs() / 70.0 < 0.15, "extrapolated {p}");
    }

    #[test]
    fn rbf_kernel_fits_smooth_nonlinear_function() {
        let mut rows = Vec::new();
        for i in 0..60 {
            rows.push(vec![i as f64 / 10.0]);
        }
        let x = Dataset::from_rows(rows);
        let y: Vec<f64> = x.rows().map(|r| (r[0]).sin() * 5.0 + 10.0).collect();
        let m = Svr::new(SvrParams {
            epsilon: 0.02,
            c: 50.0,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let preds: Vec<f64> = x.rows().map(|r| m.predict(r)).collect();
        assert!(mean_relative_error(&y, &preds) < 0.05);
    }

    #[test]
    fn epsilon_tube_limits_support_vectors() {
        let (x, y) = grid_2d();
        let tight = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.001,
            c: 10.0,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let loose = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            epsilon: 1.0,
            c: 10.0,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        // A wide tube swallows most points -> far fewer support vectors.
        assert!(loose.n_support_vectors() <= tight.n_support_vectors());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let (x, y) = grid_2d();
        assert!(matches!(
            Svr::new(SvrParams {
                c: 0.0,
                ..SvrParams::default()
            })
            .fit(&x, &y),
            Err(MlError::InvalidParameter(_))
        ));
        assert!(matches!(
            Svr::new(SvrParams {
                epsilon: -1.0,
                ..SvrParams::default()
            })
            .fit(&x, &y),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn exhausted_iteration_budget_is_reported() {
        let (x, y) = grid_2d();
        assert!(matches!(
            Svr::new(SvrParams {
                max_iter: 1,
                ..SvrParams::default()
            })
            .fit(&x, &y),
            Err(MlError::DidNotConverge { iterations: 1 })
        ));
    }

    #[test]
    fn non_finite_training_data_is_rejected() {
        let x = Dataset::from_rows(vec![vec![1.0], vec![f64::NAN], vec![3.0]]);
        assert!(matches!(
            Svr::new(SvrParams::default()).fit(&x, &[1.0, 2.0, 3.0]),
            Err(MlError::NonFiniteData)
        ));
        let x = Dataset::from_rows(vec![vec![1.0], vec![2.0]]);
        assert!(matches!(
            Svr::new(SvrParams::default()).fit(&x, &[1.0, f64::NAN]),
            Err(MlError::NonFiniteData)
        ));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x = Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let y = [7.0, 7.0, 7.0];
        let m = Svr::new(SvrParams::default()).fit(&x, &y).unwrap();
        assert!((m.predict(&[2.5]) - 7.0).abs() < 0.5);
    }

    #[test]
    fn model_roundtrips_through_serde() {
        let (x, y) = grid_2d();
        let m = Svr::new(SvrParams::default()).fit(&x, &y).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: SvrModel = serde_json::from_str(&json).unwrap();
        let r = x.row(42);
        assert!((m.predict(r) - back.predict(r)).abs() < 1e-12);
    }
}
