//! Small dense linear algebra: just enough to solve regularized
//! least-squares systems via Cholesky factorization, plus the vectorized
//! SMO inner-loop primitives shared by the epsilon- and nu-SVR solvers.
//!
//! Training sets here are small (≤ a few thousand rows, tens of features),
//! so normal equations with a ridge term are numerically adequate and far
//! simpler than QR/SVD.
//!
//! The SMO primitives ([`grad_pair_update`], [`scan_violating`]) follow
//! the same discipline as `ml::compiled`: every dispatched path — AVX2,
//! unrolled scalar, parallel chunks — performs the identical per-element
//! operation sequence, so results are bit-for-bit equal to the naive
//! sequential loop on any host. A runtime override ([`set_force_scalar`])
//! routes dispatch down the scalar paths so benchmarks and identity tests
//! can compare both inside one process.

use crate::MlError;
use std::sync::atomic::{AtomicBool, Ordering};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged matrix input");
            for (j, v) in row.iter().enumerate() {
                m[(i, j)] = *v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = dot(row, v);
        }
        out
    }

    /// In-place addition of `lambda` to the diagonal (ridge term).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Cholesky factorization of a symmetric positive-definite matrix;
    /// returns the lower-triangular factor `L` with `A = L Lᵀ`.
    pub fn cholesky(&self) -> Result<Matrix, MlError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MlError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MlError> {
        assert_eq!(b.len(), self.rows, "solve_spd dimension mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * z[k];
            }
            z[i] = sum / l[(i, i)];
        }
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Computes the Gram-style normal-equation system for least squares over
/// rows with an implicit intercept column: returns `(XᵀX, Xᵀy)` where each
/// design row is `[1, features...]`.
pub fn normal_equations<'a, I>(rows: I, y: &[f64], n_features: usize) -> (Matrix, Vec<f64>)
where
    I: Iterator<Item = &'a [f64]>,
{
    let d = n_features + 1; // intercept
    let mut xtx = Matrix::zeros(d, d);
    let mut xty = vec![0.0; d];
    let mut design = vec![0.0; d];
    for (row, &target) in rows.zip(y) {
        design[0] = 1.0;
        design[1..].copy_from_slice(row);
        for i in 0..d {
            xty[i] += design[i] * target;
            for j in i..d {
                xtx[(i, j)] += design[i] * design[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..d {
        for j in (i + 1)..d {
            xtx[(j, i)] = xtx[(i, j)];
        }
    }
    (xtx, xty)
}

/// Runtime override forcing dispatched kernels down their scalar paths
/// (the compile-time analogue is the `force-scalar` cargo feature).
static FORCE_SCALAR_OVERRIDE: AtomicBool = AtomicBool::new(false);

/// Routes the runtime-dispatched training kernels (blocked Gram
/// construction, SMO gradient updates and working-set scans) down their
/// scalar paths when `on` is true; `set_force_scalar(false)` restores
/// normal dispatch. Every path is bit-identical, so flipping this never
/// changes results — it exists so benchmarks and identity tests can time
/// or compare both implementations inside one process.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR_OVERRIDE.store(on, Ordering::Relaxed);
}

/// True when [`set_force_scalar`] has routed kernels to their scalar
/// paths.
pub fn force_scalar() -> bool {
    FORCE_SCALAR_OVERRIDE.load(Ordering::Relaxed)
}

/// True when the AVX2 training kernels may run: compiled in (`x86_64`
/// without the `force-scalar` feature), supported by the host, and not
/// overridden by [`set_force_scalar`].
pub fn simd_enabled() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        !force_scalar() && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    {
        false
    }
}

/// Applies one SMO pair step to both gradient halves:
/// `d = ci * row_i[t] + cj * row_j[t]`, then `g_up[t] += d` and
/// `g_down[t] -= d`. This is the per-iteration hot loop of both SMO
/// solvers. The AVX2 path performs the same per-element multiply/add
/// sequence (no FMA, no reassociation — the update is element-wise), so
/// it is bit-identical to the scalar loop.
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn grad_pair_update(
    g_up: &mut [f64],
    g_down: &mut [f64],
    row_i: &[f64],
    row_j: &[f64],
    ci: f64,
    cj: f64,
) {
    let l = g_up.len();
    assert!(
        g_down.len() == l && row_i.len() == l && row_j.len() == l,
        "grad_pair_update length mismatch"
    );
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    if simd_enabled() {
        // SAFETY: AVX2 support was just checked.
        unsafe { grad_pair_update_avx2(g_up, g_down, row_i, row_j, ci, cj) };
        return;
    }
    grad_pair_update_scalar(g_up, g_down, row_i, row_j, ci, cj);
}

fn grad_pair_update_scalar(
    g_up: &mut [f64],
    g_down: &mut [f64],
    row_i: &[f64],
    row_j: &[f64],
    ci: f64,
    cj: f64,
) {
    for t in 0..g_up.len() {
        let d = ci * row_i[t] + cj * row_j[t];
        g_up[t] += d;
        g_down[t] -= d;
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn grad_pair_update_avx2(
    g_up: &mut [f64],
    g_down: &mut [f64],
    row_i: &[f64],
    row_j: &[f64],
    ci: f64,
    cj: f64,
) {
    use std::arch::x86_64::*;
    let l = g_up.len();
    let civ = _mm256_set1_pd(ci);
    let cjv = _mm256_set1_pd(cj);
    let mut t = 0;
    while t + 4 <= l {
        let ri = _mm256_loadu_pd(row_i.as_ptr().add(t));
        let rj = _mm256_loadu_pd(row_j.as_ptr().add(t));
        // Same shape as the scalar body: mul, mul, add — no FMA.
        let d = _mm256_add_pd(_mm256_mul_pd(civ, ri), _mm256_mul_pd(cjv, rj));
        let up = _mm256_add_pd(_mm256_loadu_pd(g_up.as_ptr().add(t)), d);
        let dn = _mm256_sub_pd(_mm256_loadu_pd(g_down.as_ptr().add(t)), d);
        _mm256_storeu_pd(g_up.as_mut_ptr().add(t), up);
        _mm256_storeu_pd(g_down.as_mut_ptr().add(t), dn);
        t += 4;
    }
    while t < l {
        let d = ci * row_i[t] + cj * row_j[t];
        g_up[t] += d;
        g_down[t] -= d;
        t += 1;
    }
}

/// Outcome of a max-violating-pair scan over one contiguous gradient
/// block. Indices are local to the scanned slice and `usize::MAX` when no
/// element was eligible (matching the sentinels the SMO loops use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanResult {
    /// Maximum violation value among "up"-eligible elements.
    pub g_max: f64,
    /// First index attaining `g_max` (`usize::MAX` when none eligible).
    pub i_up: usize,
    /// Minimum violation value among "low"-eligible elements.
    pub g_min: f64,
    /// First index attaining `g_min` (`usize::MAX` when none eligible).
    pub i_low: usize,
}

impl ScanResult {
    /// The neutral element: nothing selected yet.
    pub fn empty() -> ScanResult {
        ScanResult {
            g_max: f64::NEG_INFINITY,
            i_up: usize::MAX,
            g_min: f64::INFINITY,
            i_low: usize::MAX,
        }
    }

    /// Folds in the result of scanning the block that *follows* this one
    /// in index order (`offset` is the later block's starting index).
    /// Strict comparisons keep the earlier block's winner on ties — the
    /// sequential loop's first-occurrence rule.
    pub fn merge_later(&mut self, later: ScanResult, offset: usize) {
        if later.i_up != usize::MAX && later.g_max > self.g_max {
            self.g_max = later.g_max;
            self.i_up = later.i_up + offset;
        }
        if later.i_low != usize::MAX && later.g_min < self.g_min {
            self.g_min = later.g_min;
            self.i_low = later.i_low + offset;
        }
    }
}

/// Parallel fan-out threshold for [`scan_violating`]: below this many
/// elements the per-call thread-spawn cost dwarfs the scan itself.
const PAR_SCAN_MIN: usize = 16_384;
/// Elements per parallel scan chunk.
const SCAN_CHUNK: usize = 4_096;

/// Working-set selection scan for the SMO solvers. For each `t` the
/// violation value is `v = -g[t]` (or `v = g[t]` when `flipped` — used
/// for the alpha* half of the epsilon dual, whose sign is −1, where
/// `-s*g` reduces to `g` exactly); "up"-eligible means `a[t] < c`
/// (flipped: `a[t] > 0`), "low"-eligible means `a[t] > 0` (flipped:
/// `a[t] < c`). Returns the maximal `v` over up-eligible elements and
/// the minimal `v` over low-eligible ones, each with the index of its
/// first occurrence.
///
/// Bit-identical to the sequential scalar loop on every path: the AVX2
/// pass keeps per-lane running extrema with strict compares (a lane
/// keeps the first occurrence in its stream) and the lane combine picks
/// strictly-better values, breaking exact ties toward the smaller index
/// — which reconstructs the sequential first-wins rule, including the
/// `±0.0` and NaN cases (ordered compares never select NaN, exactly as
/// `v > g_max` never does). Large scans fan out over [`crate::par`] in
/// fixed chunks merged in index order, so the result is independent of
/// the worker count.
///
/// # Panics
/// Panics if `a` and `g` differ in length.
pub fn scan_violating(a: &[f64], g: &[f64], c: f64, flipped: bool) -> ScanResult {
    assert_eq!(a.len(), g.len(), "scan_violating length mismatch");
    let n = a.len();
    if n >= PAR_SCAN_MIN && crate::par::threads() > 1 {
        let n_chunks = n.div_ceil(SCAN_CHUNK);
        let parts = crate::par::par_map_n(n_chunks, |ch| {
            let lo = ch * SCAN_CHUNK;
            let hi = (lo + SCAN_CHUNK).min(n);
            scan_violating_block(&a[lo..hi], &g[lo..hi], c, flipped)
        });
        let mut out = ScanResult::empty();
        for (ch, part) in parts.into_iter().enumerate() {
            out.merge_later(part, ch * SCAN_CHUNK);
        }
        return out;
    }
    scan_violating_block(a, g, c, flipped)
}

fn scan_violating_block(a: &[f64], g: &[f64], c: f64, flipped: bool) -> ScanResult {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    if simd_enabled() && a.len() >= 8 {
        // SAFETY: AVX2 support was just checked.
        return unsafe { scan_violating_avx2(a, g, c, flipped) };
    }
    scan_violating_scalar(a, g, c, flipped)
}

fn scan_violating_scalar(a: &[f64], g: &[f64], c: f64, flipped: bool) -> ScanResult {
    let mut r = ScanResult::empty();
    for t in 0..a.len() {
        let v = if flipped { g[t] } else { -g[t] };
        let (up_ok, low_ok) = if flipped {
            (a[t] > 0.0, a[t] < c)
        } else {
            (a[t] < c, a[t] > 0.0)
        };
        if up_ok && v > r.g_max {
            r.g_max = v;
            r.i_up = t;
        }
        if low_ok && v < r.g_min {
            r.g_min = v;
            r.i_low = t;
        }
    }
    r
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn scan_violating_avx2(a: &[f64], g: &[f64], c: f64, flipped: bool) -> ScanResult {
    use std::arch::x86_64::*;
    let n = a.len();
    let cv = _mm256_set1_pd(c);
    let zero = _mm256_setzero_pd();
    let sign = _mm256_set1_pd(-0.0);
    let neg_inf = _mm256_set1_pd(f64::NEG_INFINITY);
    let pos_inf = _mm256_set1_pd(f64::INFINITY);
    // Per-lane running extrema plus the (f64-encoded) index of each
    // lane's first occurrence; an index of +inf marks "nothing selected
    // in this lane" (an invariant: strict compares never select ∓inf, so
    // a selected lane always carries a finite index).
    let mut max_v = neg_inf;
    let mut max_i = pos_inf;
    let mut min_v = pos_inf;
    let mut min_i = pos_inf;
    let mut idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
    let four = _mm256_set1_pd(4.0);
    let mut t = 0;
    while t + 4 <= n {
        let av = _mm256_loadu_pd(a.as_ptr().add(t));
        let gv = _mm256_loadu_pd(g.as_ptr().add(t));
        // Sign-bit xor is the exact unary negation the scalar loop does.
        let v = if flipped { gv } else { _mm256_xor_pd(gv, sign) };
        let lt_c = _mm256_cmp_pd(av, cv, _CMP_LT_OQ);
        let gt_0 = _mm256_cmp_pd(av, zero, _CMP_GT_OQ);
        let (up_ok, low_ok) = if flipped { (gt_0, lt_c) } else { (lt_c, gt_0) };
        // Ineligible lanes become ∓inf so the strict compare never picks
        // them — the same effect as the scalar eligibility guard.
        let v_up = _mm256_blendv_pd(neg_inf, v, up_ok);
        let v_low = _mm256_blendv_pd(pos_inf, v, low_ok);
        let better_up = _mm256_cmp_pd(v_up, max_v, _CMP_GT_OQ);
        max_v = _mm256_blendv_pd(max_v, v_up, better_up);
        max_i = _mm256_blendv_pd(max_i, idx, better_up);
        let better_low = _mm256_cmp_pd(v_low, min_v, _CMP_LT_OQ);
        min_v = _mm256_blendv_pd(min_v, v_low, better_low);
        min_i = _mm256_blendv_pd(min_i, idx, better_low);
        idx = _mm256_add_pd(idx, four);
        t += 4;
    }
    let mut mv = [0.0f64; 4];
    let mut mi = [0.0f64; 4];
    let mut nv = [0.0f64; 4];
    let mut ni = [0.0f64; 4];
    _mm256_storeu_pd(mv.as_mut_ptr(), max_v);
    _mm256_storeu_pd(mi.as_mut_ptr(), max_i);
    _mm256_storeu_pd(nv.as_mut_ptr(), min_v);
    _mm256_storeu_pd(ni.as_mut_ptr(), min_i);
    // Lane combine: a strictly better value wins; an exactly equal value
    // wins only with a smaller index. Each lane holds the first
    // occurrence of its own stream's extremum, so the smallest index
    // among extremal lanes is the sequential first occurrence (±0.0
    // compare equal here, matching the scalar rule where neither strictly
    // beats the other).
    let mut r = ScanResult::empty();
    let mut up_if = f64::INFINITY;
    let mut low_if = f64::INFINITY;
    for lane in 0..4 {
        if mv[lane] > r.g_max || (mv[lane] == r.g_max && mi[lane] < up_if) {
            r.g_max = mv[lane];
            up_if = mi[lane];
        }
        if nv[lane] < r.g_min || (nv[lane] == r.g_min && ni[lane] < low_if) {
            r.g_min = nv[lane];
            low_if = ni[lane];
        }
    }
    if up_if.is_finite() {
        r.i_up = up_if as usize;
    }
    if low_if.is_finite() {
        r.i_low = low_if as usize;
    }
    // Scalar tail: these indices all exceed the vector part's, so the
    // strict compares keep earlier winners on ties, as in one long loop.
    while t < n {
        let v = if flipped { g[t] } else { -g[t] };
        let (up_ok, low_ok) = if flipped {
            (a[t] > 0.0, a[t] < c)
        } else {
            (a[t] < c, a[t] > 0.0)
        };
        if up_ok && v > r.g_max {
            r.g_max = v;
            r.i_up = t;
        }
        if low_ok && v < r.g_min {
            r.g_min = v;
            r.i_low = t;
        }
        t += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matvec_multiplies() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn cholesky_factors_spd_matrix() {
        // A = [[4, 2], [2, 3]] is SPD; L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(a.cholesky(), Err(MlError::NotPositiveDefinite));
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        // b = A * [1, -2] = [0, -4].
        let x = a.solve_spd(&[0.0, -4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_diagonal_adds_ridge() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn normal_equations_build_gram_system() {
        // Rows [[1],[2]] with intercept; X = [[1,1],[1,2]].
        let rows: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0]];
        let y = [2.0, 3.0];
        let (xtx, xty) = normal_equations(rows.iter().map(Vec::as_slice), &y, 1);
        assert_eq!(xtx[(0, 0)], 2.0); // sum 1
        assert_eq!(xtx[(0, 1)], 3.0); // sum x
        assert_eq!(xtx[(1, 0)], 3.0); // symmetric
        assert_eq!(xtx[(1, 1)], 5.0); // sum x^2
        assert_eq!(xty, vec![5.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    fn naive_grad(g_up: &mut [f64], g_down: &mut [f64], ri: &[f64], rj: &[f64], ci: f64, cj: f64) {
        for t in 0..g_up.len() {
            let d = ci * ri[t] + cj * rj[t];
            g_up[t] += d;
            g_down[t] -= d;
        }
    }

    #[test]
    fn grad_pair_update_matches_naive_loop_bitwise() {
        for l in [0usize, 1, 3, 4, 7, 8, 31, 100] {
            let ri: Vec<f64> = (0..l).map(|t| (t as f64 * 0.77).sin()).collect();
            let rj: Vec<f64> = (0..l).map(|t| (t as f64 * 1.31).cos()).collect();
            let base: Vec<f64> = (0..l).map(|t| t as f64 * 0.01 - 0.3).collect();
            let (mut au, mut ad) = (base.clone(), base.clone());
            let (mut bu, mut bd) = (base.clone(), base.clone());
            grad_pair_update(&mut au, &mut ad, &ri, &rj, 0.37, -1.91);
            naive_grad(&mut bu, &mut bd, &ri, &rj, 0.37, -1.91);
            for t in 0..l {
                assert_eq!(au[t].to_bits(), bu[t].to_bits(), "l={l} t={t}");
                assert_eq!(ad[t].to_bits(), bd[t].to_bits(), "l={l} t={t}");
            }
        }
    }

    fn naive_scan(a: &[f64], g: &[f64], c: f64, flipped: bool) -> ScanResult {
        let mut r = ScanResult::empty();
        for t in 0..a.len() {
            let v = if flipped { g[t] } else { -g[t] };
            let (up_ok, low_ok) = if flipped {
                (a[t] > 0.0, a[t] < c)
            } else {
                (a[t] < c, a[t] > 0.0)
            };
            if up_ok && v > r.g_max {
                r.g_max = v;
                r.i_up = t;
            }
            if low_ok && v < r.g_min {
                r.g_min = v;
                r.i_low = t;
            }
        }
        r
    }

    fn assert_scan_matches(a: &[f64], g: &[f64], c: f64) {
        for flipped in [false, true] {
            let want = naive_scan(a, g, c, flipped);
            let got = scan_violating(a, g, c, flipped);
            assert_eq!(got.i_up, want.i_up, "flipped={flipped}");
            assert_eq!(got.i_low, want.i_low, "flipped={flipped}");
            assert_eq!(got.g_max.to_bits(), want.g_max.to_bits(), "flipped={flipped}");
            assert_eq!(got.g_min.to_bits(), want.g_min.to_bits(), "flipped={flipped}");
        }
    }

    #[test]
    fn scan_violating_matches_sequential_rule() {
        let c = 1.0;
        for n in [0usize, 1, 4, 5, 8, 9, 16, 33, 100] {
            let a: Vec<f64> = (0..n).map(|t| (t % 5) as f64 * 0.25).collect();
            let g: Vec<f64> = (0..n).map(|t| ((t * 7 % 13) as f64 - 6.0) * 0.5).collect();
            assert_scan_matches(&a, &g, c);
        }
    }

    #[test]
    fn scan_violating_breaks_ties_on_first_occurrence() {
        // Repeated extrema: the sequential rule keeps the first index.
        let a = vec![0.5; 12];
        let g = vec![-2.0, 1.0, -2.0, 1.0, -2.0, 1.0, -2.0, 1.0, -2.0, 1.0, -2.0, 1.0];
        assert_scan_matches(&a, &g, 1.0);
        // Signed zeros compare equal under strict ordering; first wins.
        let g0 = vec![0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 5.0, -5.0, 0.0, -0.0];
        assert_scan_matches(&a, &g0, 1.0);
    }

    #[test]
    fn scan_violating_skips_ineligible_and_nan() {
        // Boundary alphas are ineligible on one side; NaN gradients are
        // never selected by ordered compares.
        let c = 1.0;
        let a = vec![0.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.25, 0.75, 0.5];
        let mut g: Vec<f64> = (0..12).map(|t| (t as f64 - 6.0) * 0.3).collect();
        g[2] = f64::NAN;
        g[10] = f64::NAN;
        assert_scan_matches(&a, &g, c);
        // Boundary alphas shut off one side entirely: a == 0 leaves no
        // down-candidates, a == C leaves no up-candidates.
        let shut = vec![0.0; 9];
        let r = scan_violating(&shut, &g[..9], c, false);
        assert_eq!(r.i_low, usize::MAX);
        let full = vec![1.0; 9];
        let r = scan_violating(&full, &g[..9], c, false);
        assert_eq!(r.i_up, usize::MAX);
    }

    #[test]
    fn force_scalar_toggle_routes_and_restores() {
        assert!(!force_scalar());
        set_force_scalar(true);
        assert!(force_scalar());
        assert!(!simd_enabled());
        // Paths are bit-identical, so results are toggle-agnostic.
        let a: Vec<f64> = (0..40).map(|t| (t % 3) as f64 * 0.5).collect();
        let g: Vec<f64> = (0..40).map(|t| (t as f64 * 0.9).sin()).collect();
        let scalar = scan_violating(&a, &g, 1.0, false);
        set_force_scalar(false);
        assert_eq!(scan_violating(&a, &g, 1.0, false), scalar);
    }
}
