//! Small dense linear algebra: just enough to solve regularized
//! least-squares systems via Cholesky factorization.
//!
//! Training sets here are small (≤ a few thousand rows, tens of features),
//! so normal equations with a ridge term are numerically adequate and far
//! simpler than QR/SVD.

use crate::MlError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged matrix input");
            for (j, v) in row.iter().enumerate() {
                m[(i, j)] = *v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = dot(row, v);
        }
        out
    }

    /// In-place addition of `lambda` to the diagonal (ridge term).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Cholesky factorization of a symmetric positive-definite matrix;
    /// returns the lower-triangular factor `L` with `A = L Lᵀ`.
    pub fn cholesky(&self) -> Result<Matrix, MlError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MlError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MlError> {
        assert_eq!(b.len(), self.rows, "solve_spd dimension mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * z[k];
            }
            z[i] = sum / l[(i, i)];
        }
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Computes the Gram-style normal-equation system for least squares over
/// rows with an implicit intercept column: returns `(XᵀX, Xᵀy)` where each
/// design row is `[1, features...]`.
pub fn normal_equations<'a, I>(rows: I, y: &[f64], n_features: usize) -> (Matrix, Vec<f64>)
where
    I: Iterator<Item = &'a [f64]>,
{
    let d = n_features + 1; // intercept
    let mut xtx = Matrix::zeros(d, d);
    let mut xty = vec![0.0; d];
    let mut design = vec![0.0; d];
    for (row, &target) in rows.zip(y) {
        design[0] = 1.0;
        design[1..].copy_from_slice(row);
        for i in 0..d {
            xty[i] += design[i] * target;
            for j in i..d {
                xtx[(i, j)] += design[i] * design[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..d {
        for j in (i + 1)..d {
            xtx[(j, i)] = xtx[(i, j)];
        }
    }
    (xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matvec_multiplies() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn cholesky_factors_spd_matrix() {
        // A = [[4, 2], [2, 3]] is SPD; L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(a.cholesky(), Err(MlError::NotPositiveDefinite));
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        // b = A * [1, -2] = [0, -4].
        let x = a.solve_spd(&[0.0, -4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_diagonal_adds_ridge() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn normal_equations_build_gram_system() {
        // Rows [[1],[2]] with intercept; X = [[1,1],[1,2]].
        let rows: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0]];
        let y = [2.0, 3.0];
        let (xtx, xty) = normal_equations(rows.iter().map(Vec::as_slice), &y, 1);
        assert_eq!(xtx[(0, 0)], 2.0); // sum 1
        assert_eq!(xtx[(0, 1)], 3.0); // sum x
        assert_eq!(xtx[(1, 0)], 3.0); // symmetric
        assert_eq!(xtx[(1, 1)], 5.0); // sum x^2
        assert_eq!(xty, vec![5.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
