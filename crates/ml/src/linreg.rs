//! Ordinary least squares / ridge regression.
//!
//! This is the model family the paper uses for operator-level models
//! (via the Shark library). We solve the normal equations with a small
//! ridge term through Cholesky factorization; if the system is still
//! singular the ridge is escalated a few times before giving up.

use crate::dataset::Dataset;
use crate::linalg::{dot, normal_equations};
use crate::MlError;
use serde::{Deserialize, Serialize};

/// Ridge-regularized linear regression learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// L2 regularization strength added to the normal-equation diagonal.
    pub ridge: f64,
}

impl LinearRegression {
    /// Creates a learner with the given ridge strength (0 = plain OLS,
    /// though a tiny ridge is recommended for near-collinear features).
    pub fn new(ridge: f64) -> Self {
        LinearRegression { ridge }
    }

    /// Fits the model on `x` (rows × features) and targets `y`.
    ///
    /// Degenerate columns — constant (zero variance) or containing
    /// non-finite values — would make the Gram matrix singular or poison
    /// the Cholesky solve with NaN; they are dropped up front and get a
    /// zero weight in the returned model instead of failing the fit.
    pub fn fit(&self, x: &Dataset, y: &[f64]) -> Result<LinearModel, MlError> {
        x.check_targets(y)?;
        if self.ridge < 0.0 {
            return Err(MlError::InvalidParameter("ridge must be non-negative"));
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteData);
        }
        let keep = usable_columns(x);
        if keep.is_empty() {
            // Every column degenerate: the best constant model.
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            return Ok(LinearModel {
                intercept: mean,
                weights: vec![0.0; x.n_cols()],
            });
        }
        let beta = if keep.len() == x.n_cols() {
            self.solve(x, y)?
        } else {
            self.solve(&x.select_columns(&keep), y)?
        };
        // Re-expand to the original feature layout (dropped columns get
        // zero weight, so `predict` keeps its input contract).
        let mut weights = vec![0.0; x.n_cols()];
        for (w, &j) in beta[1..].iter().zip(&keep) {
            weights[j] = *w;
        }
        Ok(LinearModel {
            intercept: beta[0],
            weights,
        })
    }

    /// Solves the normal equations, escalating the ridge a few times if
    /// the Gram matrix is singular (e.g. duplicate feature columns).
    fn solve(&self, x: &Dataset, y: &[f64]) -> Result<Vec<f64>, MlError> {
        let (xtx, xty) = normal_equations(x.rows(), y, x.n_cols());
        let mut lambda = self.ridge.max(0.0);
        for attempt in 0..6 {
            let mut sys = xtx.clone();
            if lambda > 0.0 {
                sys.add_diagonal(lambda);
            }
            match sys.solve_spd(&xty) {
                Ok(beta) => return Ok(beta),
                Err(MlError::NotPositiveDefinite) if attempt < 5 => {
                    lambda = if lambda == 0.0 { 1e-8 } else { lambda * 100.0 };
                }
                Err(e) => return Err(e),
            }
        }
        Err(MlError::NotPositiveDefinite)
    }
}

/// Indices of columns that are finite throughout and not constant.
fn usable_columns(x: &Dataset) -> Vec<usize> {
    (0..x.n_cols())
        .filter(|&j| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in 0..x.n_rows() {
                let v = x.row(i)[j];
                if !v.is_finite() {
                    return false;
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
            hi - lo > 1e-12 * hi.abs().max(lo.abs()).max(1.0)
        })
        .collect()
}

/// A fitted linear model `y = intercept + w · x`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LinearModel {
    /// Bias term.
    pub intercept: f64,
    /// Per-feature weights.
    pub weights: Vec<f64>,
}

impl LinearModel {
    /// Predicts the target for one feature row.
    ///
    /// The row length is only checked with a `debug_assert!`; prediction is
    /// a hot path, and the checked variant is [`LinearModel::try_predict`].
    pub fn predict(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(
            row.len(),
            self.weights.len(),
            "linear model expects {} features, got {}",
            self.weights.len(),
            row.len()
        );
        self.intercept + dot(&self.weights, row)
    }

    /// Checked prediction: returns [`MlError::ShapeMismatch`] instead of
    /// panicking when the row has the wrong number of features.
    pub fn try_predict(&self, row: &[f64]) -> Result<f64, MlError> {
        if row.len() != self.weights.len() {
            return Err(MlError::ShapeMismatch {
                expected: self.weights.len(),
                got: row.len(),
            });
        }
        Ok(self.predict(row))
    }

    /// Predicts a batch of rows in input order, bit-identical to a serial
    /// `predict` loop; large batches fan out over [`crate::par`].
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        if rows.len() >= 64 && crate::par::threads() > 1 {
            crate::par::par_map(rows, |_, r| self.predict(r.as_ref()))
        } else {
            rows.iter().map(|r| self.predict(r.as_ref())).collect()
        }
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// True when the intercept and every weight are finite — the
    /// registry's snapshot validation gate.
    pub fn weights_finite(&self) -> bool {
        self.intercept.is_finite() && self.weights.iter().all(|w| w.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2 + 3a - b
        let x = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
        ]);
        let y: Vec<f64> = x.rows().map(|r| 2.0 + 3.0 * r[0] - r[1]).collect();
        let m = LinearRegression::new(0.0).fit(&x, &y).unwrap();
        assert!((m.intercept - 2.0).abs() < 1e-9);
        assert!((m.weights[0] - 3.0).abs() < 1e-9);
        assert!((m.weights[1] + 1.0).abs() < 1e-9);
        assert!((m.predict(&[5.0, 5.0]) - 12.0).abs() < 1e-8);
    }

    #[test]
    fn handles_duplicate_columns_via_ridge_escalation() {
        // Two identical columns make XtX singular with ridge = 0; the fit
        // must still succeed by escalating the ridge internally.
        let x = Dataset::from_rows(vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let m = LinearRegression::new(0.0).fit(&x, &y).unwrap();
        assert!((m.predict(&[5.0, 5.0]) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x = Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let ols = LinearRegression::new(0.0).fit(&x, &y).unwrap();
        let heavy = LinearRegression::new(100.0).fit(&x, &y).unwrap();
        assert!(heavy.weights[0].abs() < ols.weights[0].abs());
    }

    #[test]
    fn rejects_negative_ridge_and_bad_shapes() {
        let x = Dataset::from_rows(vec![vec![1.0]]);
        assert_eq!(
            LinearRegression::new(-1.0).fit(&x, &[1.0]),
            Err(MlError::InvalidParameter("ridge must be non-negative"))
        );
        assert_eq!(
            LinearRegression::new(0.0).fit(&x, &[1.0, 2.0]),
            Err(MlError::ShapeMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            LinearRegression::new(0.0).fit(&Dataset::new(1), &[]),
            Err(MlError::EmptyDataset)
        );
    }

    #[test]
    fn constant_target_yields_constant_model() {
        let x = Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let m = LinearRegression::new(1e-6).fit(&x, &[5.0, 5.0, 5.0]).unwrap();
        assert!((m.predict(&[10.0]) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn constant_and_non_finite_columns_are_dropped() {
        // y = 2x0; column 1 is constant, column 2 contains NaN. Both must
        // be dropped (zero weight) without harming the fit on column 0.
        let x = Dataset::from_rows(vec![
            vec![1.0, 7.0, 0.0],
            vec![2.0, 7.0, f64::NAN],
            vec![3.0, 7.0, 1.0],
            vec![4.0, 7.0, 2.0],
        ]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let m = LinearRegression::new(0.0).fit(&x, &y).unwrap();
        assert_eq!(m.weights.len(), 3);
        assert_eq!(m.weights[1], 0.0);
        assert_eq!(m.weights[2], 0.0);
        assert!((m.predict(&[5.0, 7.0, 9.0]) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn all_degenerate_columns_yield_intercept_only_model() {
        let x = Dataset::from_rows(vec![vec![3.0, f64::NAN], vec![3.0, 1.0], vec![3.0, 2.0]]);
        let y = vec![4.0, 5.0, 6.0];
        let m = LinearRegression::new(0.0).fit(&x, &y).unwrap();
        assert_eq!(m.weights, vec![0.0, 0.0]);
        assert!((m.predict(&[9.0, 9.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_targets_are_rejected() {
        let x = Dataset::from_rows(vec![vec![1.0], vec![2.0]]);
        assert_eq!(
            LinearRegression::new(0.0).fit(&x, &[1.0, f64::INFINITY]),
            Err(MlError::NonFiniteData)
        );
    }
}
