//! A minimal dense design-matrix container shared by all learners.

use crate::MlError;

/// A dense (rows × columns) matrix of feature values, row-major.
///
/// `Dataset` is deliberately simple: the training sets in this system are
/// small (hundreds to a few thousand rows, tens of features), so we favor a
/// flat `Vec<f64>` with contiguous rows over anything clever.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl Dataset {
    /// Creates an empty dataset with `n_cols` feature columns.
    pub fn new(n_cols: usize) -> Self {
        Dataset {
            data: Vec::new(),
            n_rows: 0,
            n_cols,
        }
    }

    /// Builds a dataset from complete rows. All rows must have equal length;
    /// an empty input yields a 0×0 dataset.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut ds = Dataset::new(n_cols);
        for row in rows {
            ds.push_row(&row);
        }
        ds
    }

    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `n_cols`.
    pub fn from_flat(data: Vec<f64>, n_cols: usize) -> Self {
        assert!(
            n_cols > 0 && data.len().is_multiple_of(n_cols),
            "flat buffer length {} not a multiple of n_cols {}",
            data.len(),
            n_cols
        );
        let n_rows = data.len() / n_cols;
        Dataset {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len() != self.n_cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.n_cols,
            "row has {} values, dataset has {} columns",
            row.len(),
            self.n_cols
        );
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Appends one row written in place by `f`, which receives the new
    /// row pre-filled with zeros. Batch assembly writes feature rows
    /// straight into the matrix storage with no per-row temporary.
    pub fn push_row_with(&mut self, f: impl FnOnce(&mut [f64])) {
        let start = self.data.len();
        self.data.resize(start + self.n_cols, 0.0);
        f(&mut self.data[start..]);
        self.n_rows += 1;
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// True when the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterate over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols.max(1))
    }

    /// Copy of column `j`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.n_cols, "column {} out of {}", j, self.n_cols);
        (0..self.n_rows).map(|i| self.row(i)[j]).collect()
    }

    /// A new dataset containing only the given columns, in the given order.
    pub fn select_columns(&self, cols: &[usize]) -> Dataset {
        let mut out = Dataset::new(cols.len());
        let mut buf = Vec::with_capacity(cols.len());
        for i in 0..self.n_rows {
            let row = self.row(i);
            buf.clear();
            buf.extend(cols.iter().map(|&c| row[c]));
            out.push_row(&buf);
        }
        out
    }

    /// A new dataset containing only the given rows, in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_cols);
        for &i in rows {
            out.push_row(self.row(i));
        }
        out
    }

    /// Validates that `y` has one target per row.
    pub fn check_targets(&self, y: &[f64]) -> Result<(), MlError> {
        if self.n_rows == 0 {
            return Err(MlError::EmptyDataset);
        }
        if y.len() != self.n_rows {
            return Err(MlError::ShapeMismatch {
                expected: self.n_rows,
                got: y.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn shape_accessors() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_cols(), 2);
        assert!(!ds.is_empty());
        assert!(Dataset::new(4).is_empty());
    }

    #[test]
    fn row_and_column_access() {
        let ds = sample();
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert_eq!(ds.column(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(ds.column(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn push_row_with_writes_in_place() {
        let mut ds = Dataset::new(2);
        ds.push_row_with(|row| {
            assert_eq!(row, &[0.0, 0.0]);
            row[0] = 1.0;
            row[1] = 2.0;
        });
        ds.push_row_with(|row| row.copy_from_slice(&[3.0, 4.0]));
        ds.push_row(&[5.0, 6.0]);
        assert_eq!(ds, sample());
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let flat = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        assert_eq!(flat, sample());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        Dataset::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn select_columns_projects() {
        let ds = sample();
        let only_second = ds.select_columns(&[1]);
        assert_eq!(only_second.n_cols(), 1);
        assert_eq!(only_second.column(0), vec![2.0, 4.0, 6.0]);
        let swapped = ds.select_columns(&[1, 0]);
        assert_eq!(swapped.row(0), &[2.0, 1.0]);
    }

    #[test]
    fn select_rows_subsets() {
        let ds = sample();
        let sub = ds.select_rows(&[2, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.row(0), &[5.0, 6.0]);
        assert_eq!(sub.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn check_targets_validates() {
        let ds = sample();
        assert!(ds.check_targets(&[1.0, 2.0, 3.0]).is_ok());
        assert_eq!(
            ds.check_targets(&[1.0]),
            Err(MlError::ShapeMismatch {
                expected: 3,
                got: 1
            })
        );
        assert_eq!(
            Dataset::new(2).check_targets(&[]),
            Err(MlError::EmptyDataset)
        );
    }

    #[test]
    fn rows_iterator_covers_all() {
        let ds = sample();
        let collected: Vec<&[f64]> = ds.rows().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[5.0, 6.0]);
    }
}
