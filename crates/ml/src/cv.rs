//! K-fold and stratified K-fold cross-validation (Section 2 / Section 5.1).
//!
//! The paper's static-workload results use 5-fold cross-validation with
//! *stratified sampling*: folds contain roughly equal numbers of queries
//! from each TPC-H template. Strata here are arbitrary `usize` labels.

use crate::dataset::Dataset;
use crate::metrics::mean_relative_error;
use crate::{Learner, MlError, Model};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/test split: indices into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training-row indices.
    pub train: Vec<usize>,
    /// Held-out test-row indices.
    pub test: Vec<usize>,
}

/// Plain K-fold split of `n` rows, shuffled with `seed`.
///
/// Every row appears in exactly one test fold; folds differ in size by at
/// most one row.
///
/// # Panics
/// Panics when `k < 2` or `k > n`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "k-fold requires k >= 2");
    assert!(k <= n, "k-fold requires k <= n (k={k}, n={n})");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    folds_from_order(&order, k, n)
}

/// Stratified K-fold: rows are dealt into folds round-robin *within each
/// stratum*, so every fold receives roughly `|stratum| / k` rows from each
/// stratum (the paper's stratified sampling over templates).
///
/// # Panics
/// Panics when `k < 2` or `k > strata.len()`.
pub fn stratified_kfold(strata: &[usize], k: usize, seed: u64) -> Vec<Fold> {
    let n = strata.len();
    assert!(k >= 2, "k-fold requires k >= 2");
    assert!(k <= n, "k-fold requires k <= n (k={k}, n={n})");
    let mut rng = StdRng::seed_from_u64(seed);

    // Group indices per stratum, shuffle within, then deal round-robin.
    let mut by_stratum: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, &s) in strata.iter().enumerate() {
        match by_stratum.iter_mut().find(|(label, _)| *label == s) {
            Some((_, v)) => v.push(i),
            None => by_stratum.push((s, vec![i])),
        }
    }
    let mut assignment = vec![0usize; n];
    let mut next_fold = 0usize;
    for (_, mut members) in by_stratum {
        members.shuffle(&mut rng);
        for m in members {
            assignment[m] = next_fold;
            next_fold = (next_fold + 1) % k;
        }
    }
    (0..k)
        .map(|f| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if assignment[i] == f {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

/// Single shuffled train/test split of `n` rows: roughly `test_frac` of the
/// rows (clamped so both sides keep at least one row) are held out.
///
/// Used by shadow retraining to score a candidate model against the
/// incumbent on data neither was fit on.
///
/// # Panics
/// Panics when `n < 2` or `test_frac` is not in `(0, 1)`.
pub fn holdout(n: usize, test_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(n >= 2, "holdout requires at least 2 rows (n={n})");
    assert!(
        test_frac > 0.0 && test_frac < 1.0,
        "holdout test_frac must be in (0, 1), got {test_frac}"
    );
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_test = ((n as f64 * test_frac).round() as usize).clamp(1, n - 1);
    let test = order[..n_test].to_vec();
    let train = order[n_test..].to_vec();
    (train, test)
}

fn folds_from_order(order: &[usize], k: usize, n: usize) -> Vec<Fold> {
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = order[start..start + size].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + size..])
            .copied()
            .collect();
        folds.push(Fold { train, test });
        start += size;
    }
    folds
}

/// Result of cross-validating a learner.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Mean relative error per fold.
    pub fold_errors: Vec<f64>,
    /// Out-of-fold prediction for every row (in original row order).
    pub predictions: Vec<f64>,
}

impl CrossValidation {
    /// Average of the per-fold mean relative errors (the number the paper
    /// reports).
    pub fn mean_error(&self) -> f64 {
        self.fold_errors.iter().sum::<f64>() / self.fold_errors.len() as f64
    }
}

/// Minimum `rows × cols` before fold training fans out to worker threads;
/// below this, per-fold fits are too cheap to amortize thread spawns.
const PARALLEL_CELLS: usize = 2048;

/// Trains `learner` on each fold's training rows and predicts its test rows;
/// reports per-fold mean relative error and the out-of-fold predictions.
///
/// Folds are trained in parallel when the problem is large enough; every
/// fold's fit and predictions depend only on that fold's rows and results
/// are merged in fold order, so the output (including which error is
/// reported on failure) is identical to the serial loop.
pub fn cross_validate<L: Learner + Sync>(
    learner: &L,
    x: &Dataset,
    y: &[f64],
    folds: &[Fold],
) -> Result<CrossValidation, MlError> {
    x.check_targets(y)?;
    type FoldOut = Result<(Vec<(usize, f64)>, Option<f64>), MlError>;
    let run_fold = |fold: &Fold| -> FoldOut {
        let x_train = x.select_rows(&fold.train);
        let y_train: Vec<f64> = fold.train.iter().map(|&i| y[i]).collect();
        let model = learner.fit(&x_train, &y_train)?;
        let mut preds = Vec::with_capacity(fold.test.len());
        let mut actual = Vec::with_capacity(fold.test.len());
        let mut est = Vec::with_capacity(fold.test.len());
        for &i in &fold.test {
            let p = model.predict(x.row(i));
            preds.push((i, p));
            actual.push(y[i]);
            est.push(p);
        }
        let err = if actual.is_empty() {
            None
        } else {
            Some(mean_relative_error(&actual, &est))
        };
        Ok((preds, err))
    };
    let parallel = folds.len() > 1
        && crate::par::threads() > 1
        && x.n_rows() * x.n_cols().max(1) >= PARALLEL_CELLS;
    let outcomes: Vec<FoldOut> = if parallel {
        crate::par::par_map(folds, |_, fold| run_fold(fold))
    } else {
        folds.iter().map(run_fold).collect()
    };
    let mut fold_errors = Vec::with_capacity(folds.len());
    let mut predictions = vec![f64::NAN; y.len()];
    for outcome in outcomes {
        let (preds, err) = outcome?;
        for (i, p) in preds {
            predictions[i] = p;
        }
        if let Some(e) = err {
            fold_errors.push(e);
        }
    }
    Ok(CrossValidation {
        fold_errors,
        predictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LearnerKind;

    #[test]
    fn kfold_partitions_all_rows() {
        let folds = kfold(10, 3, 1);
        assert_eq!(folds.len(), 3);
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 10);
            assert!(f.test.len() >= 3);
            // Train and test are disjoint.
            assert!(f.test.iter().all(|t| !f.train.contains(t)));
        }
    }

    #[test]
    fn kfold_is_deterministic_per_seed() {
        assert_eq!(kfold(20, 5, 7), kfold(20, 5, 7));
        assert_ne!(kfold(20, 5, 7), kfold(20, 5, 8));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k_one() {
        kfold(10, 1, 0);
    }

    #[test]
    fn stratified_folds_balance_strata() {
        // 3 strata with 10 rows each; 5 folds should get 2 from each.
        let strata: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let folds = stratified_kfold(&strata, 5, 42);
        for f in &folds {
            for label in 0..3usize {
                let count = f.test.iter().filter(|&&i| strata[i] == label).count();
                assert_eq!(count, 2, "fold should hold 2 rows of stratum {label}");
            }
        }
    }

    #[test]
    fn stratified_covers_all_rows_exactly_once() {
        let strata: Vec<usize> = (0..23).map(|i| i % 4).collect();
        let folds = stratified_kfold(&strata, 5, 3);
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn holdout_partitions_all_rows() {
        let (train, test) = holdout(10, 0.3, 5);
        assert_eq!(test.len(), 3);
        assert_eq!(train.len(), 7);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Deterministic per seed.
        assert_eq!(holdout(10, 0.3, 5), holdout(10, 0.3, 5));
    }

    #[test]
    fn holdout_keeps_both_sides_nonempty() {
        let (train, test) = holdout(2, 0.01, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = holdout(3, 0.99, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn cross_validate_linear_on_linear_data_is_accurate() {
        let x = Dataset::from_rows((0..40).map(|i| vec![i as f64]).collect());
        let y: Vec<f64> = (0..40).map(|i| 5.0 + 2.0 * i as f64).collect();
        let folds = kfold(40, 5, 0);
        let cv = cross_validate(&LearnerKind::Linear { ridge: 1e-9 }, &x, &y, &folds).unwrap();
        assert!(cv.mean_error() < 1e-6, "mre = {}", cv.mean_error());
        assert!(cv.predictions.iter().all(|p| p.is_finite()));
    }
}
