//! Scalar statistics helpers: mean, variance, Pearson correlation.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson linear correlation coefficient in [-1, 1].
///
/// Returns 0.0 when either input is (numerically) constant — a constant
/// feature carries no linear information about the target, which is how the
/// forward-selection ranking treats it.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Quantile via linear interpolation on a *sorted* slice, `q` in [0, 1].
///
/// # Panics
/// Panics on an empty slice or `q` outside [0, 1].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let pos: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -x + 7.0).collect();
        assert!((pearson(&xs, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }
}
