//! Scalar statistics helpers: mean, variance, Pearson correlation, and
//! streaming (single-pass) accumulators used by the drift monitor.

use std::collections::VecDeque;

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson linear correlation coefficient in [-1, 1].
///
/// Returns 0.0 when either input is (numerically) constant — a constant
/// feature carries no linear information about the target, which is how the
/// forward-selection ranking treats it.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Quantile via linear interpolation on a *sorted* slice, `q` in [0, 1].
///
/// # Panics
/// Panics on an empty slice or `q` outside [0, 1].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Streaming mean/variance accumulator (Welford's online algorithm).
///
/// Numerically stable single-pass computation: pushing values one at a time
/// matches the two-pass [`mean`]/[`variance`] results to within floating-point
/// round-off, without retaining the samples. Conventions mirror the batch
/// helpers: population variance (divide by `n`), and 0.0 for fewer than two
/// observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one observation into the running statistics.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; 0.0 before any observation (matching [`mean`]).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population variance; 0.0 for fewer than two observations
    /// (matching [`variance`]).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (Chan et al.'s parallel
    /// update), equivalent to having pushed both observation streams into a
    /// single accumulator.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += delta * other.n as f64 / n as f64;
        self.n = n;
    }
}

/// Fixed-capacity sliding window over recent observations.
///
/// Used by the drift monitor to track the *recent* mean relative error next
/// to the all-time Welford statistics; once full, each push evicts the
/// oldest value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RollingWindow {
    cap: usize,
    buf: VecDeque<f64>,
}

impl RollingWindow {
    /// Creates a window holding at most `cap` values (`cap` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        RollingWindow {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Appends a value, evicting the oldest when the window is full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(x);
    }

    /// Number of values currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no values have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Mean of the values currently in the window; 0.0 when empty
    /// (matching [`mean`]).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        self.buf.iter().sum::<f64>() / self.buf.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let pos: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -x + 7.0).collect();
        assert!((pearson(&xs, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.5, -3.0, 7.25, 0.125, 42.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-9);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..3] {
            left.push(x);
        }
        for &x in &xs[3..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-12);
        // Merging into an empty accumulator copies the other side.
        let mut empty = Welford::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    fn rolling_window_evicts_oldest() {
        let mut w = RollingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        w.push(1.0);
        w.push(2.0);
        assert!(!w.is_full());
        w.push(3.0);
        assert!(w.is_full());
        assert!((w.mean() - 2.0).abs() < 1e-12);
        w.push(10.0); // evicts 1.0
        assert_eq!(w.len(), 3);
        assert!((w.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_window_zero_capacity_clamps_to_one() {
        let mut w = RollingWindow::new(0);
        w.push(4.0);
        w.push(9.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean(), 9.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }
}
