//! nu-SVR — the exact SVR flavor the paper uses (libsvm's `nu-SVR`
//! kernel, Section 5.1).
//!
//! Instead of fixing the epsilon-tube width, nu-SVR fixes `nu ∈ (0, 1]` —
//! an upper bound on the fraction of training errors and a lower bound on
//! the fraction of support vectors — and lets the tube width adapt to the
//! data. The dual adds a second equality constraint
//! `Σ(αᵢ + αᵢ*) = C·ν·l`, solved here with libsvm's `Solver_NU` scheme:
//! the two sign classes maintain separate violating pairs and updates
//! always pair variables of the same class, so both constraints stay
//! satisfied.

use crate::dataset::Dataset;
use crate::scaler::{StandardScaler, TargetScaler};
use crate::svr::{Kernel, SvrModel};
use crate::MlError;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for nu-SVR.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct NuSvrParams {
    /// Box constraint; larger fits harder.
    pub c: f64,
    /// Fraction parameter in (0, 1]: ≥ ν·l support vectors, ≤ ν·l margin
    /// errors.
    pub nu: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT-violation tolerance for the stopping rule.
    pub tol: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
}

impl Default for NuSvrParams {
    fn default() -> Self {
        NuSvrParams {
            c: 10.0,
            nu: 0.5,
            kernel: Kernel::Rbf { gamma: 0.0 },
            tol: 1e-3,
            max_iter: 200_000,
        }
    }
}

/// nu-SVR learner.
#[derive(Debug, Clone)]
pub struct NuSvr {
    params: NuSvrParams,
}

impl NuSvr {
    /// Creates a learner with the given hyper-parameters.
    pub fn new(params: NuSvrParams) -> Self {
        NuSvr { params }
    }

    /// Fits the nu-SVR; returns the same dense model type as epsilon-SVR.
    pub fn fit(&self, x: &Dataset, y: &[f64]) -> Result<SvrModel, MlError> {
        x.check_targets(y)?;
        let p = &self.params;
        if p.c <= 0.0 {
            return Err(MlError::InvalidParameter("C must be positive"));
        }
        if !(p.nu > 0.0 && p.nu <= 1.0) {
            return Err(MlError::InvalidParameter("nu must be in (0, 1]"));
        }
        crate::svr::check_finite(x, y)?;

        let x_scaler = StandardScaler::fit(x);
        let y_scaler = TargetScaler::fit(y);
        let xs = x_scaler.transform(x);
        let ys = y_scaler.transform(y);

        let gamma = match p.kernel {
            Kernel::Rbf { gamma } if gamma > 0.0 => gamma,
            Kernel::Rbf { .. } => 1.0 / x.n_cols().max(1) as f64,
            Kernel::Linear => 0.0,
        };

        let (beta, bias, converged) = nu_smo_solve(&xs, &ys, p, gamma);
        if !converged {
            return Err(MlError::DidNotConverge {
                iterations: p.max_iter,
            });
        }

        let mut support = Vec::new();
        let mut coefs = Vec::new();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-12 {
                support.push(xs.row(i).to_vec());
                coefs.push(b);
            }
        }
        if !bias.is_finite() || coefs.iter().any(|c| !c.is_finite()) {
            return Err(MlError::DidNotConverge {
                iterations: p.max_iter,
            });
        }
        Ok(SvrModel {
            kernel: p.kernel,
            gamma,
            support_vectors: support,
            coefficients: coefs,
            bias,
            x_scaler,
            y_scaler,
            n_features: x.n_cols(),
        })
    }
}

/// Solver_NU-style SMO: 2l variables (alpha block then alpha* block), two
/// equality constraints maintained by pairing same-class variables only.
/// The third return value is false only when the iteration budget ran out
/// before the stopping rule fired.
fn nu_smo_solve(xs: &Dataset, ys: &[f64], p: &NuSvrParams, gamma: f64) -> (Vec<f64>, f64, bool) {
    let l = xs.n_rows();
    let c = p.c;

    // Kernel matrix, shared through the process-wide Gram cache.
    let k_shared = crate::gram::GramCache::global().gram(xs, p.kernel, gamma);
    let k: &[f64] = &k_shared;
    let kij = |i: usize, j: usize| k[i * l + j];

    // Initialization (libsvm): fill both blocks with min(C, remaining
    // budget) so that sum(alpha + alpha*) = C * nu * l exactly.
    let mut a = vec![0.0f64; 2 * l];
    let mut budget = c * p.nu * l as f64 / 2.0;
    for i in 0..l {
        let v = budget.min(c);
        a[i] = v;
        a[i + l] = v;
        budget -= v;
    }

    // Gradient of 0.5 aᵀ Q̄ a + pᵀ a with p = [-y; +y] and
    // Q̄_tu = s_t s_u K_tu. Initial a is nonzero, so compute fully. The
    // net coefficients and the per-row dots are hoisted (each dot serves
    // both blocks), and the O(l²) dot pass fans out for large problems —
    // each dot's summation order is fixed, so the values are independent
    // of the worker count.
    let beta0: Vec<f64> = (0..l).map(|i| a[i] - a[i + l]).collect();
    let dot_of = |ti: usize| -> f64 {
        let row = &k[ti * l..(ti + 1) * l];
        let mut dot = 0.0;
        for u in 0..l {
            dot += row[u] * beta0[u];
        }
        dot
    };
    let dots: Vec<f64> = if l >= 256 && crate::par::threads() > 1 {
        crate::par::par_map_n(l, dot_of)
    } else {
        (0..l).map(dot_of).collect()
    };
    let mut g = vec![0.0f64; 2 * l];
    for (t, gt) in g.iter_mut().enumerate() {
        let ti = t % l;
        let s = if t < l { 1.0 } else { -1.0 };
        *gt = s * dots[ti] + if t < l { -ys[ti] } else { ys[ti] };
    }

    let mut converged = false;
    for _iter in 0..p.max_iter {
        // Per-class maximal violating pairs. For both classes the update
        // direction that increases a[i] and decreases a[j] keeps both
        // constraints intact; the violation measure for class s is
        // m = max_{a_i < C} (-G_i), M = min_{a_j > 0} (-G_j).
        let mut best: Option<(usize, usize, f64)> = None;
        for class in 0..2usize {
            let lo = if class == 0 { 0 } else { l };
            // Each class block is one blocked SIMD scan (v = −G, up-set
            // `a < C`, low-set `a > 0`), bit-identical to the sequential
            // loop it replaces; indices come back block-local.
            let r = crate::linalg::scan_violating(&a[lo..lo + l], &g[lo..lo + l], c, false);
            if r.i_up != usize::MAX && r.i_low != usize::MAX {
                let gap = r.g_max - r.g_min;
                if best.map(|(_, _, bg)| gap > bg).unwrap_or(true) {
                    best = Some((r.i_up + lo, r.i_low + lo, gap));
                }
            }
        }
        let Some((i, j, gap)) = best else {
            converged = true;
            break;
        };
        if gap < p.tol {
            converged = true;
            break;
        }
        // Same-class pair update: increase a[i] by d, decrease a[j] by d.
        let (ii, jj) = (i % l, j % l);
        let quad = (kij(ii, ii) + kij(jj, jj) - 2.0 * kij(ii, jj)).max(1e-12);
        let mut d = (-g[i] + g[j]) / quad;
        d = d.min(c - a[i]).min(a[j]);
        if d <= 0.0 {
            // Stalled at the box boundary: no further progress is possible.
            converged = true;
            break;
        }
        a[i] += d;
        a[j] -= d;
        // Gradient update: delta beta changes by ±d depending on block.
        // Hoisted row slices and sign-folded steps (±1 factors are exact
        // in IEEE 754, so the values match the naive expression bit for
        // bit while halving the kernel lookups).
        let si = if i < l { 1.0 } else { -1.0 };
        let sj = if j < l { 1.0 } else { -1.0 };
        let row_i = &k[ii * l..(ii + 1) * l];
        let row_j = &k[jj * l..(jj + 1) * l];
        let ci = si * d;
        let cj = sj * d;
        // The blocked pass computes `ci*row_i + (−cj)*row_j`; negation and
        // `x + (−y) = x − y` are exact in IEEE 754, so this matches the
        // naive `ci*row_i[t] − cj*row_j[t]` expression bit for bit.
        let (g_up, g_down) = g.split_at_mut(l);
        crate::linalg::grad_pair_update(g_up, g_down, row_i, row_j, ci, -cj);
    }

    // Bias (libsvm calculate_rho for NU): r1 from the alpha class, r2 from
    // the alpha* class; b = -(r1 - r2) / 2.
    let class_r = |lo: usize, hi: usize, a: &[f64], g: &[f64]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        for t in lo..hi {
            if a[t] > 1e-12 && a[t] < c - 1e-12 {
                sum += g[t];
                n += 1;
            } else if a[t] <= 1e-12 {
                ub = ub.min(g[t]);
            } else {
                lb = lb.max(g[t]);
            }
        }
        if n > 0 {
            sum / n as f64
        } else if ub.is_finite() && lb.is_finite() {
            (ub + lb) / 2.0
        } else if ub.is_finite() {
            ub
        } else if lb.is_finite() {
            lb
        } else {
            0.0
        }
    };
    let r1 = class_r(0, l, &a, &g);
    let r2 = class_r(l, 2 * l, &a, &g);
    let bias = -(r1 - r2) / 2.0;

    let beta: Vec<f64> = (0..l).map(|i| a[i] - a[i + l]).collect();
    (beta, bias, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mean_relative_error;

    fn grid() -> (Dataset, Vec<f64>) {
        let mut rows = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let ds = Dataset::from_rows(rows);
        let y = ds.rows().map(|r| 4.0 * r[0] - 2.0 * r[1] + 30.0).collect();
        (ds, y)
    }

    #[test]
    fn nu_svr_fits_linear_data() {
        let (x, y) = grid();
        let m = NuSvr::new(NuSvrParams {
            kernel: Kernel::Linear,
            c: 100.0,
            nu: 0.5,
            ..NuSvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let preds: Vec<f64> = x.rows().map(|r| m.predict(r)).collect();
        let err = mean_relative_error(&y, &preds);
        assert!(err < 0.06, "err = {err}");
    }

    #[test]
    fn nu_svr_fits_nonlinear_data_with_rbf() {
        let mut rows = Vec::new();
        for i in 0..80 {
            rows.push(vec![i as f64 / 10.0]);
        }
        let x = Dataset::from_rows(rows);
        let y: Vec<f64> = x.rows().map(|r| (r[0]).cos() * 4.0 + 12.0).collect();
        let m = NuSvr::new(NuSvrParams {
            c: 50.0,
            nu: 0.6,
            ..NuSvrParams::default()
        })
        .fit(&x, &y)
        .unwrap();
        let preds: Vec<f64> = x.rows().map(|r| m.predict(r)).collect();
        assert!(mean_relative_error(&y, &preds) < 0.08);
    }

    #[test]
    fn nu_spectrum_all_fit_noisy_data() {
        // On noisy data, every nu in the usable range must produce a
        // working model; the stored (net-coefficient) support vectors are
        // non-empty. Note: the classical "ν lower-bounds the SV fraction"
        // statement counts raw α/α* activity — net coefficients
        // `β = α − α*` can cancel, so the dense model may store fewer.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..90).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] + 5.0 + rng.gen_range(-0.5..0.5))
            .collect();
        let x = Dataset::from_rows(rows);
        for nu in [0.2, 0.5, 0.8] {
            let m = NuSvr::new(NuSvrParams {
                kernel: Kernel::Linear,
                c: 50.0,
                nu,
                ..NuSvrParams::default()
            })
            .fit(&x, &y)
            .unwrap();
            assert!(m.n_support_vectors() >= 1, "nu={nu}");
            let preds: Vec<f64> = x.rows().map(|r| m.predict(r)).collect();
            let err = mean_relative_error(&y, &preds);
            assert!(err < 0.1, "nu={nu}: err {err}");
        }
    }

    #[test]
    fn rejects_invalid_nu() {
        let (x, y) = grid();
        for bad in [0.0, -0.3, 1.5] {
            assert!(matches!(
                NuSvr::new(NuSvrParams {
                    nu: bad,
                    ..NuSvrParams::default()
                })
                .fit(&x, &y),
                Err(MlError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn exhausted_iteration_budget_is_reported() {
        let (x, y) = grid();
        assert!(matches!(
            NuSvr::new(NuSvrParams {
                max_iter: 1,
                ..NuSvrParams::default()
            })
            .fit(&x, &y),
            Err(MlError::DidNotConverge { iterations: 1 })
        ));
    }

    #[test]
    fn non_finite_training_data_is_rejected() {
        let x = Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert!(matches!(
            NuSvr::new(NuSvrParams::default()).fit(&x, &[1.0, f64::NEG_INFINITY, 3.0]),
            Err(MlError::NonFiniteData)
        ));
    }

    #[test]
    fn constant_target_is_safe() {
        let x = Dataset::from_rows((0..10).map(|i| vec![i as f64]).collect());
        let y = vec![3.0; 10];
        let m = NuSvr::new(NuSvrParams::default()).fit(&x, &y).unwrap();
        assert!((m.predict(&[4.0]) - 3.0).abs() < 0.6);
    }
}
