//! Blocked-Gram bit-identity tests.
//!
//! `ml::gram::compute_gram_blocked` (the cache-blocked, lane-padded SoA
//! kernel behind `GramCache`) must be **exactly equal** — `f64::to_bits`,
//! not a ULP tolerance — to the direct `compute_gram` reference for any
//! dataset, because the blocked kernel performs each entry's per-lane
//! operation sequence in `Kernel::eval`'s order (see `ml::gram`'s module
//! docs). The property must hold under the AVX2 path, the scalar fallback
//! (runtime `set_force_scalar` toggle and the `force-scalar` feature
//! alike), and every thread count — the row-tile fan-out merges private
//! triangle buffers in tile order, so parallelism never reorders a single
//! floating-point operation.
//!
//! The same properties run twice: a deterministic seed-grid sweep (always
//! on), and proptest shrink-capable versions over the same generator —
//! mirroring `tests/simd_props.rs`.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands some imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use ml::gram::{compute_gram, compute_gram_blocked};
use ml::svr::Kernel;
use ml::Dataset;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard};

/// The force-scalar override and the worker count are process globals;
/// tests that sweep them serialize on this lock and restore the defaults
/// on drop (also on panic, so one failure cannot poison its neighbors).
static TOGGLES: Mutex<()> = Mutex::new(());

struct ToggleGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ToggleGuard {
    fn acquire() -> ToggleGuard {
        ToggleGuard(TOGGLES.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for ToggleGuard {
    fn drop(&mut self) {
        ml::linalg::set_force_scalar(false);
        ml::par::set_threads(0);
    }
}

/// Random dataset of shape `l × d` with values spanning signs and
/// magnitudes (Gram entries then stress both the dot and the RBF paths).
fn random_rows(l: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..l)
        .map(|_| (0..d).map(|_| rng.gen_range(-100.0..100.0)).collect())
        .collect();
    Dataset::from_rows(rows)
}

/// Core property: blocked == direct to the bit, across thread counts and
/// both sides of the runtime force-scalar toggle.
fn assert_blocked_matches_direct(xs: &Dataset, kernel: Kernel, gamma: f64) {
    let _guard = ToggleGuard::acquire();
    let direct = compute_gram(xs, kernel, gamma);
    for threads in [1usize, 2, 4] {
        ml::par::set_threads(threads);
        for scalar in [false, true] {
            ml::linalg::set_force_scalar(scalar);
            let blocked = compute_gram_blocked(xs, kernel, gamma);
            assert_eq!(direct.len(), blocked.len());
            for (i, (a, b)) in direct.iter().zip(&blocked).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "entry {i} diverged ({a} vs {b}) for {kernel:?} \
                     l={} d={} threads={threads} force_scalar={scalar}",
                    xs.n_rows(),
                    xs.n_cols(),
                );
            }
        }
    }
}

/// Deterministic sweep: row counts around the lane (8) and tile (64)
/// boundaries × several arities, kernels, and seeds. Runs in full in
/// every environment.
#[test]
fn blocked_gram_identity_seed_grid() {
    for &l in &[1usize, 2, 7, 8, 9, 16, 63, 64, 65, 130] {
        for &d in &[1usize, 2, 5, 8, 13] {
            for seed in 0..2u64 {
                let xs = random_rows(l, d, seed ^ ((l as u64) << 16) ^ ((d as u64) << 8));
                assert_blocked_matches_direct(&xs, Kernel::Linear, 0.0);
                assert_blocked_matches_direct(&xs, Kernel::Rbf { gamma: 0.7 }, 0.7);
            }
        }
    }
}

/// Duplicated and near-identical rows: RBF diagonals hit exactly
/// `exp(-0.0)`, and symmetric entries must mirror exactly.
#[test]
fn blocked_gram_handles_duplicate_rows_and_symmetry() {
    let _guard = ToggleGuard::acquire();
    let mut rows: Vec<Vec<f64>> = (0..20)
        .map(|i| vec![(i % 4) as f64, -(i as f64) * 0.5, 3.25])
        .collect();
    rows.push(rows[3].clone());
    rows.push(rows[7].clone());
    let xs = Dataset::from_rows(rows);
    let l = xs.n_rows();
    for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 1.3 }] {
        let gamma = 1.3;
        let g = compute_gram_blocked(&xs, kernel, gamma);
        let direct = compute_gram(&xs, kernel, gamma);
        assert_eq!(
            g.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        for i in 0..l {
            for j in 0..l {
                assert_eq!(g[i * l + j].to_bits(), g[j * l + i].to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn blocked_gram_equals_direct_exactly(
        l in 1usize..80,
        d in 1usize..12,
        seed in any::<u64>(),
        linear in any::<bool>(),
        gamma in 0.001f64..3.0,
    ) {
        let xs = random_rows(l, d, seed);
        let kernel = if linear { Kernel::Linear } else { Kernel::Rbf { gamma } };
        assert_blocked_matches_direct(&xs, kernel, gamma);
    }
}
