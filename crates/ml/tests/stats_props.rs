//! Property tests for the streaming residual statistics: a single-pass
//! Welford accumulator (including arbitrary merge splits) must match the
//! two-pass mean/variance computation within 1e-9, and the rolling window
//! must always equal the mean of the last `cap` values.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands these imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use ml::stats::{mean, variance, RollingWindow, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn welford_matches_two_pass_within_1e9(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..256),
    ) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert_eq!(w.count(), xs.len() as u64);
        // Tolerance scales with the data's magnitude: Welford is stable,
        // but both sides carry round-off proportional to the values.
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        prop_assert!((w.mean() - mean(&xs)).abs() <= 1e-9 * scale);
        prop_assert!((w.variance() - variance(&xs)).abs() <= 1e-9 * scale * scale);
    }

    #[test]
    fn welford_merge_matches_sequential(
        xs in proptest::collection::vec(-1e4f64..1e4, 2..128),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() <= 1e-9 * scale);
        prop_assert!((left.variance() - all.variance()).abs() <= 1e-9 * scale * scale);
    }

    #[test]
    fn rolling_window_mean_matches_tail(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..128),
        cap in 1usize..32,
    ) {
        let mut w = RollingWindow::new(cap);
        for &x in &xs {
            w.push(x);
        }
        let tail_start = xs.len().saturating_sub(cap);
        let tail = &xs[tail_start..];
        prop_assert_eq!(w.len(), tail.len());
        prop_assert!(w.is_full() == (xs.len() >= cap));
        let scale = tail.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        prop_assert!((w.mean() - mean(tail)).abs() <= 1e-9 * scale);
    }
}
