//! Steady-state allocation counter for the compiled inference path.
//!
//! PR 3's claim — and this PR's SIMD rework must preserve it — is that
//! `predict_into` and the batched `predict_batch_into` perform **zero
//! heap allocations** once their scratch/output buffers have warmed up.
//! A counting `#[global_allocator]` makes that a hard assertion instead
//! of a doc comment. The whole check lives in one `#[test]` so the
//! process-wide counter never races another test thread.

use ml::compiled::PredictScratch;
use ml::svr::Kernel;
use ml::{Dataset, Svr, SvrParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_prediction_allocates_nothing() {
    // Pin to one worker so the batch path cannot spawn threads (thread
    // spawning allocates by design; the serial batched path must not).
    ml::par::set_threads(1);

    let rows: Vec<Vec<f64>> = (0..48)
        .map(|i| vec![i as f64, (i % 5) as f64, (i * 3 % 11) as f64])
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r[0] * 1.5 + r[1] * r[2] + 3.0).collect();
    let x = Dataset::from_rows(rows.clone());

    for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.0 }] {
        let model = Svr::new(SvrParams {
            kernel,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        .expect("fit");
        let compiled = model.compile();

        // Warm up: the scratch's scaled-row buffer grows on first use.
        let mut scratch = PredictScratch::new();
        let mut sink = 0.0;
        for r in &rows {
            sink += compiled.predict_into(r, &mut scratch);
        }

        let before = allocations();
        for _ in 0..50 {
            for r in &rows {
                sink += compiled.predict_into(r, &mut scratch);
            }
        }
        assert_eq!(
            allocations(),
            before,
            "single-row predict_into allocated ({kernel:?})"
        );

        // Scalar tree and (where present) forced-SIMD paths share the
        // zero-alloc property.
        let before = allocations();
        for r in &rows {
            sink += compiled.predict_into_scalar(r, &mut scratch);
            if let Some(v) = compiled.predict_into_simd(r, &mut scratch) {
                sink += v;
            }
        }
        assert_eq!(
            allocations(),
            before,
            "forced kernel paths allocated ({kernel:?})"
        );

        // Batched: once `out` has capacity for the batch, repeat calls
        // must not touch the heap.
        let mut out = Vec::new();
        compiled.predict_batch_into(&rows, &mut out, &mut scratch);
        let before = allocations();
        for _ in 0..50 {
            compiled.predict_batch_into(&rows, &mut out, &mut scratch);
        }
        sink += out.iter().sum::<f64>();
        assert_eq!(
            allocations(),
            before,
            "predict_batch_into allocated ({kernel:?})"
        );

        // Keep `sink` observable so the predict loops cannot be optimized
        // away in release test runs.
        assert!(sink.is_finite());
    }

    ml::par::set_threads(0);
}
