//! Vectorized-SMO bit-identity tests.
//!
//! The SMO and nu-SMO inner loops run on the blocked `ml::linalg`
//! primitives (`scan_violating`, `grad_pair_update`), which are
//! bit-identical to the sequential scalar rule by construction (see
//! `ml::linalg`'s docs). Consequently a whole *fit* must be bit-identical
//! — the same support vectors, the same alphas (dual coefficients), the
//! same bias — whichever path executes: AVX2 or scalar (runtime
//! `set_force_scalar` toggle and the `force-scalar` feature alike), one
//! thread or many. Models are compared through their serde serialization,
//! which round-trips every `f64` exactly (including `-0.0`), so string
//! equality is value-bit equality across all learned parameters.
//!
//! A deterministic seed grid (always on) plus proptest shrink-capable
//! sweeps, mirroring `tests/simd_props.rs`; data comes from closed-form
//! deterministic generators, not an RNG, so the cases are identical in
//! every environment.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands some imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use ml::nusvr::{NuSvr, NuSvrParams};
use ml::svr::{Kernel, Svr, SvrParams};
use ml::Dataset;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// The force-scalar override and the worker count are process globals;
/// tests that sweep them serialize on this lock and restore the defaults
/// on drop (also on panic).
static TOGGLES: Mutex<()> = Mutex::new(());

struct ToggleGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ToggleGuard {
    fn acquire() -> ToggleGuard {
        ToggleGuard(TOGGLES.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for ToggleGuard {
    fn drop(&mut self) {
        ml::linalg::set_force_scalar(false);
        ml::par::set_threads(0);
    }
}

/// Deterministic synthetic regression data: smooth multi-feature rows and
/// a mildly nonlinear target. No RNG involved, so the exact same bits are
/// generated on any host, and both solvers converge on every grid shape.
fn training_set(l: usize, d: usize, seed: u64) -> (Dataset, Vec<f64>) {
    let phase = (seed % 17) as f64;
    let mut rows = Vec::with_capacity(l);
    let mut y = Vec::with_capacity(l);
    for i in 0..l {
        let row: Vec<f64> = (0..d)
            .map(|k| {
                let t = (i * (k + 3)) as f64 + phase;
                (t * 0.37).sin() * 10.0 + k as f64 * 0.5 + i as f64 * 0.01
            })
            .collect();
        let target = row
            .iter()
            .enumerate()
            .map(|(k, v)| (k as f64 + 1.0) * v)
            .sum::<f64>()
            * 0.3
            + ((i as f64) * 0.11 + phase).cos() * 0.5;
        rows.push(row);
        y.push(target);
    }
    (Dataset::from_rows(rows), y)
}

fn svr_params(kernel: Kernel) -> SvrParams {
    SvrParams {
        kernel,
        ..SvrParams::default()
    }
}

fn nu_params(kernel: Kernel) -> NuSvrParams {
    NuSvrParams {
        kernel,
        ..NuSvrParams::default()
    }
}

/// Serializes a fit so equality covers every learned parameter: support
/// vectors, dual coefficients, bias, kernel, and scalers.
fn fit_json(x: &Dataset, y: &[f64], kernel: Kernel, nu: bool) -> String {
    let model = if nu {
        NuSvr::new(nu_params(kernel)).fit(x, y)
    } else {
        Svr::new(svr_params(kernel)).fit(x, y)
    }
    .expect("fit must converge on the deterministic grid data");
    serde_json::to_string(&model).expect("svr models serialize")
}

/// Core property: for both solvers and both kernels, every
/// (thread count × force-scalar) configuration reproduces the scalar
/// single-thread reference fit exactly.
fn assert_fit_config_invariant(l: usize, d: usize, seed: u64, kernel: Kernel) {
    let _guard = ToggleGuard::acquire();
    let (x, y) = training_set(l, d, seed);
    for nu in [false, true] {
        ml::par::set_threads(1);
        ml::linalg::set_force_scalar(true);
        let reference = fit_json(&x, &y, kernel, nu);
        for threads in [1usize, 2, 4] {
            for scalar in [false, true] {
                ml::par::set_threads(threads);
                ml::linalg::set_force_scalar(scalar);
                let got = fit_json(&x, &y, kernel, nu);
                assert_eq!(
                    got, reference,
                    "{} fit diverged from the scalar reference for {kernel:?} \
                     l={l} d={d} threads={threads} force_scalar={scalar}",
                    if nu { "nu-SVR" } else { "epsilon-SVR" },
                );
            }
        }
    }
}

/// Deterministic sweep: row counts spanning the gram tile boundary (64)
/// and the nu-SVR parallel-gradient threshold region × arities × kernels.
#[test]
fn smo_fit_identity_seed_grid() {
    for &(l, d) in &[(12usize, 2usize), (30, 3), (65, 1), (90, 4)] {
        for seed in 0..2u64 {
            assert_fit_config_invariant(l, d, seed, Kernel::Linear);
            assert_fit_config_invariant(l, d, seed, Kernel::Rbf { gamma: 0.0 });
        }
    }
}

/// The working-set scan's parallel fan-out engages above 16 K elements;
/// solver-sized fits never reach it, so the primitive is swept directly:
/// chunked parallel scans must reproduce the sequential rule at every
/// thread count, on both toggle sides, for both scan orientations.
#[test]
fn large_scan_is_thread_count_invariant() {
    let _guard = ToggleGuard::acquire();
    let n = 40_000;
    let c = 1.0;
    let a: Vec<f64> = (0..n).map(|t| ((t % 7) as f64) * 0.2).collect();
    let g: Vec<f64> = (0..n).map(|t| ((t as f64) * 0.013).sin() * 3.0).collect();
    for flipped in [false, true] {
        ml::par::set_threads(1);
        ml::linalg::set_force_scalar(true);
        let reference = ml::linalg::scan_violating(&a, &g, c, flipped);
        for threads in [1usize, 2, 4, 8] {
            for scalar in [false, true] {
                ml::par::set_threads(threads);
                ml::linalg::set_force_scalar(scalar);
                let got = ml::linalg::scan_violating(&a, &g, c, flipped);
                assert_eq!(
                    got, reference,
                    "scan diverged (flipped={flipped} threads={threads} \
                     force_scalar={scalar})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn smo_fit_identical_for_any_shape(
        l in 8usize..70,
        d in 1usize..5,
        seed in any::<u64>(),
        linear in any::<bool>(),
    ) {
        let kernel = if linear { Kernel::Linear } else { Kernel::Rbf { gamma: 0.0 } };
        assert_fit_config_invariant(l, d, seed, kernel);
    }
}
