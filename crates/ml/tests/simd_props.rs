//! SIMD-vs-scalar bit-identity tests.
//!
//! The AVX2 kernel and the unrolled scalar reduction tree implement the
//! same fixed accumulation order (see `ml::compiled`'s module docs), so
//! their outputs must be **exactly equal** — `f64::to_bits`, not a ULP
//! tolerance — for any model whatsoever. Models are hand-built through
//! `SvrModel::from_parts` to sweep shapes a fit would rarely produce:
//! arities through the specialized range and past it, support-vector
//! counts across lane-padding boundaries (0, partial block, exact
//! multiples of 8), zero coefficients interleaved for pruning, extreme
//! coefficient magnitudes.
//!
//! The same properties run twice: a deterministic seed-grid sweep (always
//! on), and proptest shrink-capable versions over the same generator.
//! On hosts without AVX2 (or with `--features force-scalar`)
//! `predict_into_simd` returns `None` and the properties degenerate to
//! scalar-vs-dispatched identity, which must hold everywhere.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands some imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use ml::compiled::PredictScratch;
use ml::scaler::{StandardScaler, TargetScaler};
use ml::svr::{Kernel, SvrModel};
use ml::Dataset;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Raw parts of a hand-built model, kept so the pruning property can
/// assemble a pre-pruned variant of the same model.
#[derive(Clone)]
struct RawModel {
    kernel: Kernel,
    gamma: f64,
    sv: Vec<Vec<f64>>,
    coef: Vec<f64>,
    bias: f64,
    x_scaler: StandardScaler,
    y_scaler: TargetScaler,
    d: usize,
}

impl RawModel {
    fn build(&self) -> SvrModel {
        SvrModel::from_parts(
            self.kernel,
            self.gamma,
            self.sv.clone(),
            self.coef.clone(),
            self.bias,
            self.x_scaler.clone(),
            self.y_scaler.clone(),
            self.d,
        )
    }

    /// Same model with zero-coefficient support vectors dropped up front.
    fn build_pruned(&self) -> SvrModel {
        let mut sv = Vec::new();
        let mut coef = Vec::new();
        for (row, &c) in self.sv.iter().zip(&self.coef) {
            if c != 0.0 {
                sv.push(row.clone());
                coef.push(c);
            }
        }
        SvrModel::from_parts(
            self.kernel,
            self.gamma,
            sv,
            coef,
            self.bias,
            self.x_scaler.clone(),
            self.y_scaler.clone(),
            self.d,
        )
    }
}

/// Hand-builds a model plus probe rows from scalar draws. `d` and `n_sv`
/// choose the shape; everything else comes from the seeded generator so
/// the construction stays deterministic (and stub-friendly) while still
/// covering extreme values.
fn build_model(d: usize, n_sv: usize, seed: u64, linear: bool) -> (RawModel, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gamma = rng.gen_range(0.001..3.0);
    let bias = rng.gen_range(-1000.0..1000.0);
    let kernel = if linear {
        Kernel::Linear
    } else {
        Kernel::Rbf { gamma }
    };
    let sv: Vec<Vec<f64>> = (0..n_sv)
        .map(|_| (0..d).map(|_| rng.gen_range(-100.0..100.0)).collect())
        .collect();
    // Coefficients mix moderate values, exact ±0.0 (pruning), and large
    // magnitudes (reduction-order stress).
    let coef: Vec<f64> = (0..n_sv)
        .map(|i| match i % 6 {
            0 => 0.0,
            1 => -0.0,
            2 => rng.gen_range(1e6..1e8),
            _ => rng.gen_range(-50.0..50.0),
        })
        .collect();
    // Scalers fit on synthetic spread-out data of the right arity.
    let scaler_rows: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..d).map(|_| rng.gen_range(-20.0..20.0)).collect())
        .collect();
    let x_scaler = StandardScaler::fit(&Dataset::from_rows(scaler_rows));
    let y_scaler = TargetScaler::fit(&[
        rng.gen_range(-10.0..10.0),
        rng.gen_range(10.0..30.0),
        rng.gen_range(-30.0..-10.0),
    ]);
    let raw = RawModel {
        kernel,
        gamma,
        sv,
        coef,
        bias,
        x_scaler,
        y_scaler,
        d,
    };
    let probes: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..d).map(|_| rng.gen_range(-200.0..200.0)).collect())
        .collect();
    (raw, probes)
}

/// Core property: dispatched == scalar tree == (if available) AVX2, to
/// the bit, on every probe; the pair-row and 4-row kernels and the
/// batched path (which rides them) must reproduce the same bits. Returns
/// the scalar-tree bits for reuse.
fn assert_paths_identical(model: &SvrModel, probes: &[Vec<f64>]) -> Vec<u64> {
    let c = model.compile();
    let mut scratch = PredictScratch::new();
    let mut bits = Vec::with_capacity(probes.len());
    for row in probes {
        let scalar = c.predict_into_scalar(row, &mut scratch);
        let dispatched = c.predict_into(row, &mut scratch);
        assert_eq!(
            dispatched.to_bits(),
            scalar.to_bits(),
            "dispatched path diverged from the scalar tree on {row:?}"
        );
        if let Some(simd) = c.predict_into_simd(row, &mut scratch) {
            assert_eq!(
                simd.to_bits(),
                scalar.to_bits(),
                "AVX2 diverged from the scalar tree on {row:?}"
            );
        }
        bits.push(scalar.to_bits());
    }
    // Pair kernel: shared SV loads, per-row order preserved — every
    // pairing (adjacent, and same-row twice) must match the single-row
    // bits exactly.
    for pair in probes.windows(2) {
        let (a, b) = c.predict_into_pair(&pair[0], &pair[1], &mut scratch);
        assert_eq!(
            a.to_bits(),
            c.predict_into(&pair[0], &mut scratch).to_bits(),
            "pair kernel (first row) diverged on {:?}",
            pair[0]
        );
        assert_eq!(
            b.to_bits(),
            c.predict_into(&pair[1], &mut scratch).to_bits(),
            "pair kernel (second row) diverged on {:?}",
            pair[1]
        );
    }
    if let Some(row) = probes.first() {
        let (a, b) = c.predict_into_pair(row, row, &mut scratch);
        assert_eq!(a.to_bits(), b.to_bits(), "pair of identical rows differs");
    }
    // Quad kernel: four rows per SV load, each row keeping the single-row
    // per-lane operation order.
    if probes.len() >= 4 {
        let q = c.predict_into_quad(
            [
                probes[0].as_slice(),
                probes[1].as_slice(),
                probes[2].as_slice(),
                probes[3].as_slice(),
            ],
            &mut scratch,
        );
        for (i, v) in q.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                c.predict_into(&probes[i], &mut scratch).to_bits(),
                "quad kernel (row {i}) diverged on {:?}",
                probes[i]
            );
        }
    }
    if let Some(row) = probes.first() {
        let q = c.predict_into_quad([row, row, row, row], &mut scratch);
        assert!(
            q.iter().all(|v| v.to_bits() == q[0].to_bits()),
            "quad of identical rows differs"
        );
    }
    // Batched path (quads and pairs internally, including the tails).
    let batch_bits: Vec<u64> = c
        .predict_batch(probes)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert_eq!(batch_bits, bits, "batched path diverged from per-row bits");
    bits
}

/// Core property: dropping zero-coefficient SVs before compilation lands
/// every survivor in the same lane, hence identical bits.
fn assert_pruning_invariant(raw: &RawModel, probes: &[Vec<f64>]) {
    let full_bits = assert_paths_identical(&raw.build(), probes);
    let pruned_bits = assert_paths_identical(&raw.build_pruned(), probes);
    assert_eq!(full_bits, pruned_bits, "pruning changed prediction bits");
}

/// Deterministic sweep: every arity around the specialization boundary ×
/// SV counts around lane-block boundaries × several seeds. Runs in full
/// in every environment (the proptest versions below add shrinking when
/// the real proptest crate is present).
#[test]
fn simd_scalar_identity_seed_grid() {
    for &d in &[1usize, 2, 3, 5, 6, 7, 8, 9, 12, 13] {
        for &n_sv in &[0usize, 1, 3, 7, 8, 9, 15, 16, 17, 40] {
            for seed in 0..4u64 {
                for linear in [true, false] {
                    let (raw, probes) = build_model(d, n_sv, seed ^ ((d as u64) << 8), linear);
                    assert_paths_identical(&raw.build(), &probes);
                }
            }
        }
    }
}

#[test]
fn pruning_invariance_seed_grid() {
    for &d in &[1usize, 3, 6, 8, 11] {
        for &n_sv in &[0usize, 5, 8, 13, 24] {
            for seed in 100..103u64 {
                for linear in [true, false] {
                    let (raw, probes) = build_model(d, n_sv, seed, linear);
                    assert_pruning_invariant(&raw, &probes);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn simd_equals_scalar_tree_exactly(
        d in 1usize..14,
        n_sv in 0usize..41,
        seed in any::<u64>(),
        linear in any::<bool>(),
    ) {
        let (raw, probes) = build_model(d, n_sv, seed, linear);
        assert_paths_identical(&raw.build(), &probes);
    }

    #[test]
    fn pruning_zero_coefficients_never_changes_bits(
        d in 1usize..14,
        n_sv in 0usize..41,
        seed in any::<u64>(),
        linear in any::<bool>(),
    ) {
        let (raw, probes) = build_model(d, n_sv, seed, linear);
        assert_pruning_invariant(&raw, &probes);
    }
}
