//! Property tests for the Gram cache: a cached matrix must be exactly the
//! matrix a direct kernel evaluation produces, and repeated lookups must be
//! hits that share the same allocation.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands these imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use ml::gram::{compute_gram, GramCache};
use ml::svr::Kernel;
use ml::Dataset;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_gram_equals_direct_kernel_evals(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 4), 1..24),
        gamma in 0.01f64..2.0,
        linear in any::<bool>(),
    ) {
        let ds = Dataset::from_rows(rows);
        let l = ds.n_rows();
        let (kernel, g) = if linear {
            (Kernel::Linear, 0.0)
        } else {
            (Kernel::Rbf { gamma }, gamma)
        };

        let cache = GramCache::global();
        let first = cache.gram(&ds, kernel, g);
        let again = cache.gram(&ds, kernel, g);
        // The second lookup is a hit sharing the same allocation.
        prop_assert!(Arc::ptr_eq(&first, &again));

        let direct = compute_gram(&ds, kernel, g);
        prop_assert_eq!(first.len(), l * l);
        for i in 0..l {
            for j in 0..l {
                // Bit-identical to a direct computation, symmetric, and
                // within tolerance of the textbook kernel formula.
                prop_assert_eq!(first[i * l + j].to_bits(), direct[i * l + j].to_bits());
                prop_assert_eq!(first[i * l + j].to_bits(), first[j * l + i].to_bits());
                let want = if linear {
                    ds.row(i).iter().zip(ds.row(j)).map(|(a, b)| a * b).sum::<f64>()
                } else {
                    let sq: f64 = ds
                        .row(i)
                        .iter()
                        .zip(ds.row(j))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    (-g * sq).exp()
                };
                let tol = 1e-9 * want.abs().max(1.0);
                prop_assert!((first[i * l + j] - want).abs() <= tol);
            }
        }
    }
}
