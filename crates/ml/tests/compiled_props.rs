//! Property tests for the compiled inference path: for any fitted SVR —
//! across kernels, gamma, dimensionality (specialized and dynamic kernel
//! expansions), and support-vector counts — the compiled model must agree
//! with the reference model *bit for bit*, on training rows and on probe
//! rows far outside the training region, one row at a time and in batches.

use ml::svr::Kernel;
use ml::{Dataset, Model, MlError, Svr, SvrParams, TrainedModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_is_bit_identical_to_reference(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 1..10), 6..24),
        gamma in 0.01f64..2.0,
        linear in any::<bool>(),
        probe_scale in 1.0f64..50.0,
    ) {
        let kernel = if linear { Kernel::Linear } else { Kernel::Rbf { gamma } };
        // A mildly nonlinear target so the fit keeps plenty of SVs.
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                let s: f64 = r.iter().sum();
                2.0 * r[0] + 0.1 * s * s + 5.0
            })
            .collect();
        let x = Dataset::from_rows(rows.clone());
        let model = match Svr::new(SvrParams {
            kernel,
            max_iter: 50_000,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        {
            Ok(m) => m,
            // Non-convergence on an adversarial draw is not this test's
            // concern; the learner-level fallback covers it.
            Err(MlError::DidNotConverge { .. }) => return Ok(()),
            Err(e) => panic!("fit failed: {e}"),
        };
        let compiled = model.compile();
        prop_assert!(compiled.n_support_vectors() <= rows.len());

        // Training rows plus probes well outside the training region
        // (extrapolation must not change the bit-identity contract).
        let mut probes = rows.clone();
        probes.push(vec![probe_scale; x.n_cols()]);
        probes.push(vec![-probe_scale; x.n_cols()]);
        probes.push(vec![0.0; x.n_cols()]);
        for row in &probes {
            prop_assert_eq!(
                model.predict(row).to_bits(),
                compiled.predict(row).to_bits()
            );
        }

        // Batch output equals the serial loop, in input order, through
        // both the reference-model entry point and the compiled one.
        let loop_bits: Vec<u64> =
            probes.iter().map(|r| model.predict(r).to_bits()).collect();
        let batch_bits: Vec<u64> = model
            .predict_batch(&probes)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        prop_assert_eq!(&loop_bits, &batch_bits);
        let compiled_batch_bits: Vec<u64> = compiled
            .predict_batch(&probes)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        prop_assert_eq!(&loop_bits, &compiled_batch_bits);

        // The TrainedModel wrapper dispatches to the same code.
        let wrapped = TrainedModel::Svr(model);
        let wrapped_compiled = wrapped.compile();
        for row in &probes {
            prop_assert_eq!(
                wrapped.predict(row).to_bits(),
                wrapped_compiled.predict(row).to_bits()
            );
        }

        // Checked prediction rejects wrong arity instead of panicking.
        let bad = vec![0.0; x.n_cols() + 1];
        prop_assert_eq!(
            wrapped.try_predict(&bad),
            Err(MlError::ShapeMismatch { expected: x.n_cols(), got: x.n_cols() + 1 })
        );
    }
}
