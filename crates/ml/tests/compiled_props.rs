//! Property tests for the compiled inference path's numeric contracts.
//!
//! For any fitted SVR — across kernels, gamma, dimensionality
//! (specialized and dynamic expansions), and support-vector counts:
//!
//! - the retained unblocked path (`predict_into_unblocked`) is
//!   **bit-identical** to the reference model (same left-to-right fold),
//! - the dispatched lane-tree path equals the forced scalar tree **bit
//!   for bit** (SIMD-vs-scalar identity lives in `tests/simd_props.rs`),
//! - batches equal a serial compiled loop bit for bit, in input order,
//! - the lane tree agrees with the reference to summation-reordering
//!   rounding, bounded by the condition of the kernel sum
//!   (`CompiledSvr::sum_magnitude`).

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands some imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use ml::compiled::PredictScratch;
use ml::svr::Kernel;
use ml::{Dataset, MlError, Model, Svr, SvrParams, TrainedModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_contracts_hold_for_fitted_models(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 1..10), 6..24),
        gamma in 0.01f64..2.0,
        linear in any::<bool>(),
        probe_scale in 1.0f64..50.0,
    ) {
        let kernel = if linear { Kernel::Linear } else { Kernel::Rbf { gamma } };
        // A mildly nonlinear target so the fit keeps plenty of SVs.
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                let s: f64 = r.iter().sum();
                2.0 * r[0] + 0.1 * s * s + 5.0
            })
            .collect();
        let x = Dataset::from_rows(rows.clone());
        let model = match Svr::new(SvrParams {
            kernel,
            max_iter: 50_000,
            ..SvrParams::default()
        })
        .fit(&x, &y)
        {
            Ok(m) => m,
            // Non-convergence on an adversarial draw is not this test's
            // concern; the learner-level fallback covers it.
            Err(MlError::DidNotConverge { .. }) => return Ok(()),
            Err(e) => panic!("fit failed: {e}"),
        };
        let compiled = model.compile();
        prop_assert!(compiled.n_support_vectors() <= rows.len());

        // Training rows plus probes well outside the training region
        // (extrapolation must not change the contracts).
        let mut probes = rows.clone();
        probes.push(vec![probe_scale; x.n_cols()]);
        probes.push(vec![-probe_scale; x.n_cols()]);
        probes.push(vec![0.0; x.n_cols()]);
        let mut scratch = PredictScratch::new();
        for row in &probes {
            let reference = model.predict(row);
            // Unblocked keeps the reference fold order exactly.
            prop_assert_eq!(
                reference.to_bits(),
                compiled.predict_into_unblocked(row, &mut scratch).to_bits()
            );
            // The dispatched lane tree equals the forced scalar tree.
            let tree = compiled.predict_into(row, &mut scratch);
            prop_assert_eq!(
                tree.to_bits(),
                compiled.predict_into_scalar(row, &mut scratch).to_bits()
            );
            // And stays within reordering rounding of the reference.
            let tol = 1e-12 * (1.0 + compiled.sum_magnitude(row, &mut scratch));
            prop_assert!(
                (reference - tree).abs() <= tol,
                "|{} - {}| > {}", reference, tree, tol
            );
        }

        // Batch output equals the serial compiled loop, in input order,
        // through both the reference-model entry point and the compiled
        // one, including the zero-alloc predict_batch_into form.
        let loop_bits: Vec<u64> = probes
            .iter()
            .map(|r| compiled.predict_into(r, &mut scratch).to_bits())
            .collect();
        let batch_bits: Vec<u64> = model
            .predict_batch(&probes)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        prop_assert_eq!(&loop_bits, &batch_bits);
        let compiled_batch_bits: Vec<u64> = compiled
            .predict_batch(&probes)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        prop_assert_eq!(&loop_bits, &compiled_batch_bits);
        let mut out = Vec::new();
        compiled.predict_batch_into(&probes, &mut out, &mut scratch);
        let into_bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&loop_bits, &into_bits);

        // The TrainedModel wrapper dispatches to the same compiled code.
        let wrapped = TrainedModel::Svr(model);
        let wrapped_compiled = wrapped.compile();
        for (row, &bits) in probes.iter().zip(&loop_bits) {
            prop_assert_eq!(wrapped_compiled.predict(row).to_bits(), bits);
        }

        // Checked prediction rejects wrong arity instead of panicking.
        let bad = vec![0.0; x.n_cols() + 1];
        prop_assert_eq!(
            wrapped.try_predict(&bad),
            Err(MlError::ShapeMismatch { expected: x.n_cols(), got: x.n_cols() + 1 })
        );
    }
}
